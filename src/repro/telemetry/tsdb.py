"""Collector-side time series: durable metrics log + in-memory rollups.

The ingestion half of the push pipeline (:mod:`repro.telemetry.metrics`
is the client half).  A :class:`MetricsStore` accepts validated record
batches from ``/ingest``, appends them to ``metrics.jsonl`` under the
repo's append-only durability contract (single ``O_APPEND`` write per
batch, per-line CRC over the sorted-key JSON payload, corrupt lines
warn and skip — the same wrapper the
:class:`~repro.telemetry.session.RunRegistry` uses), and folds every
point into in-memory rollups:

* one **series** per (namespace × run × metric × label set), capped to
  bound a misbehaving client's cardinality,
* per series, a **ring buffer** of fixed-width time windows, each
  holding ``{t0, count, sum, min, max, last}`` — enough for rate,
  average, and envelope queries without retaining raw points,
* running **totals** per series (count/sum/min/max/last/first_t/last_t).

Windows that fall off the ring are gone from memory but not from the
log, which a fresh store replays on construction — restart-safe without
any flush discipline beyond the append itself.

Reads are served three ways: ``/metrics/query`` JSON (the rollups,
filterable by namespace/run/metric), Prometheus-style ``/metrics``
exposition text (totals only — the format has no window concept), and a
bounded event buffer that the ``/events`` SSE stream drains so the
dashboard sees pushes live.  All mutation happens under one lock;
handlers run on ThreadingHTTPServer threads.
"""

from __future__ import annotations

import json
import math
import os
import re
import sys
import threading
import time
import zlib
from pathlib import Path

from repro.telemetry.metrics import (METRICS_SCHEMA, expand_record,
                                     validate_record)

#: Log file name inside the registry directory.
METRICS_LOG = "metrics.jsonl"

#: Namespace applied when no token table is configured and the client
#: did not ask for one.
DEFAULT_NAMESPACE = "default"

_PROM_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(metric: str) -> str:
    name = _PROM_SANITIZE.sub("_", metric)
    return name if not name[:1].isdigit() else "_" + name


def _prom_escape(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"') \
        .replace("\n", "\\n")


class Series:
    """Rollups for one (namespace, run, metric, labels) series."""

    __slots__ = ("namespace", "run", "metric", "labels", "kind",
                 "count", "sum", "min", "max", "last", "first_t",
                 "last_t", "windows")

    def __init__(self, namespace, run, metric, labels, kind):
        self.namespace = namespace
        self.run = run
        self.metric = metric
        self.labels = labels  # tuple of (key, value) pairs, sorted
        self.kind = kind
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.last = None
        self.first_t = None
        self.last_t = None
        self.windows: list = []  # ring of {"t0",count,sum,min,max,last}

    def add(self, value: float, t: float, *, window: float,
            ring: int) -> None:
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.last = value
        if self.first_t is None:
            self.first_t = t
        self.last_t = t
        t0 = math.floor(t / window) * window
        bucket = self.windows[-1] if self.windows else None
        if bucket is None or bucket["t0"] != t0:
            # Out-of-order points land in the newest bucket rather
            # than reopening an old one: rollups stay append-only.
            if bucket is not None and t0 < bucket["t0"]:
                t0 = bucket["t0"]
            else:
                bucket = {"t0": t0, "count": 0, "sum": 0.0,
                          "min": math.inf, "max": -math.inf,
                          "last": None}
                self.windows.append(bucket)
                if len(self.windows) > ring:
                    del self.windows[:len(self.windows) - ring]
        bucket["count"] += 1
        bucket["sum"] += value
        bucket["min"] = min(bucket["min"], value)
        bucket["max"] = max(bucket["max"], value)
        bucket["last"] = value

    def as_dict(self) -> dict:
        return {
            "namespace": self.namespace,
            "run": self.run,
            "metric": self.metric,
            "labels": dict(self.labels),
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "last": self.last,
            "first_t": self.first_t,
            "last_t": self.last_t,
            "windows": [dict(w) for w in self.windows],
        }


class MetricsStore:
    """Durable, rolled-up destination for pushed metric batches."""

    def __init__(self, log_path, *, window: float = 10.0,
                 windows_per_series: int = 64, max_series: int = 4096,
                 max_batch_records: int = 4096, event_buffer: int = 256,
                 replay: bool = True):
        self.log_path = Path(log_path) if log_path else None
        self.window = window
        self.windows_per_series = max(1, int(windows_per_series))
        self.max_series = max(1, int(max_series))
        self.max_batch_records = max_batch_records
        self._lock = threading.Lock()
        self._series: dict = {}  # key tuple -> Series
        #: Batches land here first, then drain under the lock; depth is
        #: what /healthz reports as ingest backlog.
        self._queue: list = []
        # Bounded event ring for SSE fan-out: (seq, event dict).
        self._events: list = []
        self._event_seq = 0
        self._event_buffer = max(1, int(event_buffer))
        # Ingest accounting (exposed at /healthz and /metrics).
        self.batches = 0
        self.records = 0
        self.rejected = 0
        self.unauthorized = 0
        self.series_dropped = 0
        self.corrupt_log_lines = 0
        if replay and self.log_path and self.log_path.exists():
            self._replay()

    # -- durability ----------------------------------------------------

    def _append_log(self, namespace: str, batch: dict) -> None:
        if self.log_path is None:
            return
        record = {"namespace": namespace, "batch": batch}
        payload = json.dumps(record, sort_keys=True)
        line = json.dumps({
            "v": METRICS_SCHEMA,
            "crc": zlib.crc32(payload.encode()),
            "record": record,
        }, sort_keys=True) + "\n"
        self.log_path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.log_path,
                     os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)

    def _replay(self) -> None:
        """Rebuild rollups from the log; corrupt lines warn and skip."""
        bad = 0
        with open(self.log_path, "rb") as fh:
            for raw in fh:
                line = raw.strip()
                if not line:
                    continue
                record = self._decode(line)
                if record is None:
                    bad += 1
                    continue
                self._fold_batch(record["namespace"], record["batch"],
                                 publish=False)
        if bad:
            self.corrupt_log_lines += bad
            print(f"metrics store: skipped {bad} corrupt record(s) in "
                  f"{self.log_path}", file=sys.stderr)

    @staticmethod
    def _decode(line: bytes):
        try:
            wrapper = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(wrapper, dict) \
                or wrapper.get("v") != METRICS_SCHEMA:
            return None
        record = wrapper.get("record")
        if not isinstance(record, dict) \
                or not isinstance(record.get("namespace"), str) \
                or not isinstance(record.get("batch"), dict):
            return None
        payload = json.dumps(record, sort_keys=True)
        if zlib.crc32(payload.encode()) != wrapper.get("crc"):
            return None
        return record

    # -- ingestion -----------------------------------------------------

    def ingest(self, payload, *, namespace: str = None) -> dict:
        """Accept one POSTed batch.  ``namespace`` is what the token
        table resolved (auth wins over anything the client claimed);
        ``None`` falls back to the client's claim, then the default.

        Returns ``{"accepted", "rejected", "errors"}`` — the client
        folds ``rejected`` into its own accounting.  Raises only
        ``ValueError`` for a structurally unusable payload (the caller
        maps that to HTTP 400).
        """
        if not isinstance(payload, dict) \
                or payload.get("v") != METRICS_SCHEMA:
            raise ValueError("bad batch: missing or unknown schema "
                             "version")
        records = payload.get("records")
        if not isinstance(records, list) \
                or len(records) > self.max_batch_records:
            raise ValueError("bad batch: records must be a list of "
                             f"<= {self.max_batch_records}")
        run = payload.get("run")
        if not isinstance(run, str) or not run:
            raise ValueError("bad batch: missing run")
        if namespace is None:
            claimed = payload.get("namespace")
            namespace = claimed if isinstance(claimed, str) and claimed \
                else DEFAULT_NAMESPACE
        accepted, errors = [], []
        for record in records:
            error = validate_record(record)
            if error is None:
                accepted.append(record)
            elif len(errors) < 8:
                errors.append(error)
        rejected = len(records) - len(accepted)
        batch = {
            "run": run,
            "source": str(payload.get("source", "")),
            "received": time.time(),
            "records": accepted,
        }
        with self._lock:
            self._queue.append((namespace, batch))
            self.batches += 1
            self.rejected += rejected
            # Drain synchronously: the queue is real under concurrent
            # handler threads (depth > 0 while another thread folds),
            # but a batch is durable + rolled up before its 200 goes
            # out — no background writer to race with in tests.
            while self._queue:
                ns, queued = self._queue.pop(0)
                self._append_log(ns, queued)
                self._fold_batch(ns, queued)
        return {"accepted": len(accepted), "rejected": rejected,
                "errors": errors}

    def _fold_batch(self, namespace: str, batch: dict,
                    publish: bool = True) -> None:
        run = batch["run"]
        received = batch.get("received")
        for record in batch["records"]:
            for point in expand_record(record):
                self._fold_point(namespace, run, point, received)
        if publish and batch["records"]:
            self._publish_event({
                "namespace": namespace,
                "run": run,
                "source": batch.get("source", ""),
                "records": len(batch["records"]),
                "metrics": sorted({r["metric"]
                                   for r in batch["records"]})[:8],
            })

    def _fold_point(self, namespace, run, point, received) -> None:
        labels = tuple(sorted(
            (str(k), str(v)) for k, v in point.get("labels", {}).items()
        ))
        key = (namespace, run, point["metric"], labels)
        series = self._series.get(key)
        if series is None:
            if len(self._series) >= self.max_series:
                self.series_dropped += 1
                return
            series = Series(namespace, run, point["metric"], labels,
                            point.get("kind", "gauge"))
            self._series[key] = series
        t = point.get("t")
        if t is None:
            t = received if received is not None else time.time()
        series.add(float(point["value"]), float(t),
                   window=self.window, ring=self.windows_per_series)
        self.records += 1

    def _publish_event(self, event: dict) -> None:
        self._event_seq += 1
        self._events.append((self._event_seq, event))
        if len(self._events) > self._event_buffer:
            del self._events[:len(self._events) - self._event_buffer]

    # -- reads ---------------------------------------------------------

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def stats(self) -> dict:
        with self._lock:
            return {
                "batches": self.batches,
                "records": self.records,
                "rejected": self.rejected,
                "unauthorized": self.unauthorized,
                "series": len(self._series),
                "series_dropped": self.series_dropped,
                "corrupt_log_lines": self.corrupt_log_lines,
                "queue_depth": len(self._queue),
                "log": str(self.log_path) if self.log_path else None,
            }

    def query(self, *, namespace: str = None, run: str = None,
              metric: str = None) -> dict:
        """Rollup view, filterable.  ``metric`` matches exactly or as a
        dotted prefix (``cell`` matches ``cell.ops``)."""
        with self._lock:
            series = list(self._series.values())
        out = []
        for s in series:
            if namespace is not None and s.namespace != namespace:
                continue
            if run is not None and s.run != run:
                continue
            if metric is not None and s.metric != metric \
                    and not s.metric.startswith(metric + "."):
                continue
            out.append(s.as_dict())
        out.sort(key=lambda d: (d["namespace"], d["run"], d["metric"],
                                sorted(d["labels"].items())))
        return {"series": out, "count": len(out)}

    def prometheus_text(self) -> str:
        """Prometheus exposition of series totals.  Counters export
        their running sum as ``<name>_total``; gauges export their last
        value; both get ``_count``-free envelopes via ``_min``/``_max``
        only where a scraper can use them (gauges)."""
        with self._lock:
            series = sorted(self._series.values(),
                            key=lambda s: (s.metric, s.namespace,
                                           s.run, s.labels))
            stats = {
                "batches": self.batches,
                "records": self.records,
                "rejected": self.rejected,
                "unauthorized": self.unauthorized,
                "series": len(self._series),
            }
        lines = []
        for name, value in sorted(stats.items()):
            prom = f"repro_ingest_{name}"
            lines.append(f"# TYPE {prom} counter"
                         if name != "series" else
                         f"# TYPE {prom} gauge")
            lines.append(f"{prom} {value}")
        seen_types: set = set()
        for s in series:
            base = "repro_" + _prom_name(s.metric)
            label_str = ",".join(
                [f'namespace="{_prom_escape(s.namespace)}"',
                 f'run="{_prom_escape(s.run)}"'] +
                [f'{_prom_name(k)}="{_prom_escape(v)}"'
                 for k, v in s.labels])
            if s.kind == "counter":
                name = base + "_total"
                if name not in seen_types:
                    seen_types.add(name)
                    lines.append(f"# TYPE {name} counter")
                lines.append(f"{name}{{{label_str}}} {s.sum}")
            else:
                if base not in seen_types:
                    seen_types.add(base)
                    lines.append(f"# TYPE {base} gauge")
                lines.append(f"{base}{{{label_str}}} {s.last}")
                lines.append(f"{base}_min{{{label_str}}} {s.min}")
                lines.append(f"{base}_max{{{label_str}}} {s.max}")
        return "\n".join(lines) + "\n"

    def events_since(self, cursor: int):
        """(new_cursor, events) — the SSE stream polls this.  A cursor
        older than the ring start silently skips to what remains."""
        with self._lock:
            events = [e for seq, e in self._events if seq > cursor]
            return self._event_seq, events
