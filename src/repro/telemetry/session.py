"""One run's telemetry collectors, bundled for the engines.

A :class:`TelemetrySession` is what threads through
:func:`repro.engine.simulator.simulate` — it carries an optional
:class:`~repro.telemetry.tracer.ChromeTracer`, an optional
:class:`~repro.telemetry.interval.IntervalSampler`, and the
message-type x scope tally both engines feed.  ``None`` anywhere means
that collector is off; a ``None`` session means telemetry is off
entirely and the engines run their uninstrumented hot loops.

A :class:`RunRegistry` is the cross-run session object: a durable
index of every telemetry run directory, results store, and observe
capture produced on this host, which the sweep CLI registers into the
moment a sweep *starts* and the observability service
(``observe --serve``) discovers from.  It follows the repo's
append-only durability contract (single-write ``O_APPEND`` records,
per-line CRC, corrupt lines warn and skip, last writer wins per
directory).
"""

from __future__ import annotations

import json
import os
import sys
import time
import zlib
from pathlib import Path

from repro.engine.throughput import ThroughputSink
from repro.telemetry.interval import IntervalSampler
from repro.telemetry.tracer import NULL_TRACER, ChromeTracer, Tracer

#: Registry directory used when the CLI is not told otherwise (the
#: sibling of the journal's ``.repro-journal`` convention).
DEFAULT_REGISTRY = ".repro-registry"

#: Registry record schema; bump on any incompatible change (old lines
#: then parse as corrupt and are skipped).
REGISTRY_SCHEMA = 1


class RunRegistry:
    """Durable index of run/telemetry/store directories on this host.

    One JSONL file (``registry.jsonl``) of records, each describing a
    directory of artifacts: a sweep's ``--telemetry`` output
    (``kind="run"``), a ``--store`` results store (``kind="store"``),
    or a single-cell ``observe`` capture (``kind="observe"``).
    Registration is idempotent per ``(kind, dir)``: re-registering a
    directory appends a fresh record that supersedes the old one, which
    is how a sweep flips its own status from ``running`` to
    ``completed`` without rewriting history.
    """

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / "registry.jsonl"

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def register(self, kind: str, directory, **info) -> dict:
        """Append one record; returns the record dict."""
        record = {
            "kind": kind,
            "dir": str(Path(directory).resolve()),
            "registered": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "pid": os.getpid(),
            "info": {k: v for k, v in info.items() if v is not None},
        }
        payload = json.dumps(record, sort_keys=True)
        line = json.dumps({
            "v": REGISTRY_SCHEMA,
            "crc": zlib.crc32(payload.encode()),
            "record": record,
        }, sort_keys=True) + "\n"
        fd = os.open(self.path,
                     os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)
        return record

    def register_run(self, directory, *, experiments=None, settings=None,
                     status: str = "running", cells: int = None) -> dict:
        """Register a sweep's ``--telemetry`` directory.

        Called once with ``status="running"`` before the first cell
        simulates (so a live service sees the sweep immediately) and
        again at exit with the final status and cell count.
        """
        return self.register("run", directory,
                             experiments=list(experiments or []),
                             settings=settings, status=status,
                             cells=cells)

    def register_store(self, directory) -> dict:
        """Register a ``--store`` results-store directory."""
        return self.register("store", directory)

    def register_observe(self, directory, *, slug: str = None,
                         cell: dict = None) -> dict:
        """Register one ``observe`` capture (has ``intervals.jsonl``)."""
        return self.register("observe", directory, slug=slug, cell=cell)

    def register_fleet(self, directory, *, coordinator: dict = None,
                       status: str = "running", workers=None,
                       leases: dict = None, stats: dict = None) -> dict:
        """Register a distributed sweep fleet's liveness snapshot.

        The fabric-net coordinator republishes this periodically (and on
        membership changes), so ``observe --serve`` can render worker
        liveness and lease state at ``/fleet`` while a multi-host sweep
        runs.  Keyed on the sweep's telemetry directory like every
        other record; last writer wins.
        """
        return self.register("fleet", directory, coordinator=coordinator,
                             status=status, workers=list(workers or []),
                             leases=leases, stats=stats)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def entries(self) -> list:
        """Every registered directory, deduped by ``(kind, dir)``.

        First-registration order is preserved; the *latest* record for
        a directory wins (so ``info.status`` reflects the last update).
        Corrupt lines warn and are skipped, never raised.
        """
        merged: dict = {}
        bad = 0
        if self.path.exists():
            with open(self.path, "rb") as fh:
                for raw in fh:
                    line = raw.strip()
                    if not line:
                        continue
                    record = self._decode(line)
                    if record is None:
                        bad += 1
                        continue
                    # Last record wins; dict assignment keeps the
                    # key's first-registration position.
                    merged[(record["kind"], record["dir"])] = record
        if bad:
            print(f"run registry: skipped {bad} corrupt record(s) in "
                  f"{self.path}", file=sys.stderr)
        return list(merged.values())

    @staticmethod
    def _decode(line: bytes):
        try:
            wrapper = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(wrapper, dict) \
                or wrapper.get("v") != REGISTRY_SCHEMA:
            return None
        record = wrapper.get("record")
        if not isinstance(record, dict) or "kind" not in record \
                or "dir" not in record:
            return None
        payload = json.dumps(record, sort_keys=True)
        if zlib.crc32(payload.encode()) != wrapper.get("crc"):
            return None
        return record

    def _kind(self, kind: str) -> list:
        return [r for r in self.entries() if r["kind"] == kind]

    def runs(self) -> list:
        return self._kind("run")

    def stores(self) -> list:
        return self._kind("store")

    def observations(self) -> list:
        return self._kind("observe")

    def fleets(self) -> list:
        return self._kind("fleet")

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------

    def prune(self, *, drop_missing: bool = False,
              older_than_days: float = None,
              dry_run: bool = False) -> dict:
        """Compact ``registry.jsonl`` to its live records.

        The registry is append-only — every status flip appends a
        superseding record — so a long-lived registry accretes history
        it never reads (only the last record per ``(kind, dir)`` ever
        wins).  Pruning rewrites the file to exactly those winning
        records, optionally also dropping entries whose directory no
        longer exists (``drop_missing``) or whose last registration is
        older than ``older_than_days``.

        The rewrite is atomic (temp file + ``os.replace``), so a crash
        mid-prune leaves either the old file or the new one, never a
        mix, and concurrent readers always see a complete file.
        Returns a stats dict: kept/superseded/dropped counts and bytes
        before/after.
        """
        raw_lines = 0
        if self.path.exists():
            with open(self.path, "rb") as fh:
                raw_lines = sum(1 for line in fh if line.strip())
        bytes_before = (self.path.stat().st_size
                        if self.path.exists() else 0)
        live = self.entries()  # last-writer-wins, corrupt lines dropped
        kept, dropped = [], []
        cutoff = None
        if older_than_days is not None:
            cutoff = time.strftime(
                "%Y-%m-%dT%H:%M:%S",
                time.localtime(time.time() - older_than_days * 86400),
            )
        for record in live:
            if drop_missing and not os.path.isdir(record["dir"]):
                dropped.append(record)
                continue
            if cutoff is not None and record["registered"] < cutoff:
                dropped.append(record)
                continue
            kept.append(record)
        stats = {
            "records_before": raw_lines,
            "kept": len(kept),
            "superseded": raw_lines - len(live),
            "dropped": len(dropped),
            "bytes_before": bytes_before,
            "bytes_after": bytes_before,
        }
        if dry_run:
            return stats
        tmp = self.path.with_suffix(".jsonl.tmp")
        with open(tmp, "wb") as fh:
            for record in kept:
                payload = json.dumps(record, sort_keys=True)
                fh.write((json.dumps({
                    "v": REGISTRY_SCHEMA,
                    "crc": zlib.crc32(payload.encode()),
                    "record": record,
                }, sort_keys=True) + "\n").encode())
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        stats["bytes_after"] = self.path.stat().st_size
        return stats


class TelemetrySession:
    """Collectors for one simulation run."""

    def __init__(self, tracer: Tracer = None,
                 sampler: IntervalSampler = None):
        self.tracer = tracer
        self.sampler = sampler
        #: Cumulative "MSGTYPE.scope" -> message count, fed by the
        #: engines (the protocols do not know the scope of the op that
        #: triggered a message; the engines do).
        self.msg_scope_counts: dict = {}

    @classmethod
    def recording(cls, cfg, interval: float = None,
                  time_unit: str = "cycles") -> "TelemetrySession":
        """Full recording session: Chrome tracer + interval sampler.

        ``interval`` defaults to 10 000 cycles (detailed engine) or
        2 048 ops (throughput engine's analytic phases).
        """
        if interval is None:
            interval = 10_000.0 if time_unit == "cycles" else 2_048.0
        return cls(
            tracer=ChromeTracer(cfg.gpms_per_gpu, cfg.num_gpus,
                                time_label=time_unit),
            sampler=IntervalSampler(interval, time_unit=time_unit),
        )

    @property
    def active_tracer(self) -> Tracer:
        """The tracer to install on a protocol (never ``None``)."""
        return self.tracer if self.tracer is not None else NULL_TRACER

    def tally(self, mtype, scope) -> None:
        """Count one message under its type and triggering-op scope."""
        key = f"{mtype.name}.{scope.name.lower()}" if scope is not None \
            else mtype.name
        counts = self.msg_scope_counts
        counts[key] = counts.get(key, 0) + 1


class TallyingSink(ThroughputSink):
    """ThroughputSink that also feeds a telemetry session.

    Built by :func:`repro.engine.simulator.simulate` instead of the
    plain sink when a session is attached, so the uninstrumented path
    never pays for the tally.  The engine sets ``scope`` to the current
    op's scope before processing it.
    """

    def __init__(self, num_gpus: int, session: TelemetrySession):
        super().__init__(num_gpus)
        self.session = session
        self.tracer = session.active_tracer
        self.scope = None

    def send(self, mtype, src, dst, line, size_bytes):
        ThroughputSink.send(self, mtype, src, dst, line, size_bytes)
        self.session.tally(mtype, self.scope)
        tracer = self.tracer
        if tracer.enabled:
            # The throughput engine has no delivery times; messages
            # appear as zero-duration slices at the op-index clock.
            tracer.message(mtype, src, dst, size_bytes,
                           tracer.now, tracer.now, scope=self.scope)


# ----------------------------------------------------------------------
# Snapshot builders (what the interval sampler bins)
# ----------------------------------------------------------------------


def _cache_counters(proto) -> dict:
    l1_hits = l1_misses = 0
    for slices in proto.l1:
        for sl in slices:
            l1_hits += sl.stats.hits
            l1_misses += sl.stats.misses
    l2_hits = l2_misses = 0
    for l2 in proto.l2:
        l2_hits += l2.stats.hits
        l2_misses += l2.stats.misses
    return {
        "l1_hits": l1_hits, "l1_misses": l1_misses,
        "l2_hits": l2_hits, "l2_misses": l2_misses,
    }


def _gauges(proto) -> dict:
    gauges = {}
    if proto.has_directory:
        gauges["dir_entries"] = [len(d) for d in proto.dirs]
    return gauges


def make_detailed_snapshot(proto, network, session: TelemetrySession,
                           degradation=None):
    """Snapshot closure for the detailed engine: exact per-link counters."""

    def snapshot():
        counters = _cache_counters(proto)
        counters.update(network.telemetry_counters())
        counters["dram_bytes"] = [d.stats.total_bytes for d in proto.dram]
        counters["messages"] = dict(session.msg_scope_counts)
        if degradation is not None:
            counters["retries"] = degradation.retries
            counters["dropped_messages"] = degradation.dropped_messages
        return counters, _gauges(proto)

    return snapshot


def make_throughput_snapshot(proto, sink: ThroughputSink,
                             session: TelemetrySession):
    """Snapshot closure for the throughput engine: analytic per-phase
    byte totals (the engine has no clock, so phases are op-count bins)."""

    def snapshot():
        counters = _cache_counters(proto)
        counters["link_out_bytes"] = list(sink.link_out_bytes)
        counters["link_in_bytes"] = list(sink.link_in_bytes)
        counters["xbar_bytes"] = list(sink.xbar_bytes)
        counters["dram_bytes"] = [d.stats.total_bytes for d in proto.dram]
        counters["messages"] = dict(session.msg_scope_counts)
        return counters, _gauges(proto)

    return snapshot
