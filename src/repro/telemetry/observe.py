"""``python -m repro.experiments observe`` — deep-observe one cell.

Runs a single (workload, protocol) cell with *full* telemetry — Chrome
event trace, interval metrics, manifest — and renders a markdown
report.  This is the drill-down companion to sweep-level ``--telemetry``
manifests: the sweep tells you *which* cell is interesting, observe
tells you *why* (which links it hammers, how wide its invalidation
fan-outs are, how its hit rates evolve).

Artifacts written into ``--out`` (default ``observe-out/``):

* ``trace.json`` — Chrome trace-event JSON; load in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.
* ``intervals.jsonl`` — interval metrics time series.
* ``metrics.json`` / ``perf.json`` — the cell manifest + perf sidecar.
* ``report.md`` — the rendered report.  It is built from the
  *re-loaded* artifacts, so every observe run round-trips the formats.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.config import SystemConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments observe",
        description="Record one simulation cell with full telemetry "
                    "and render a markdown report.  With --serve, "
                    "start the live observability service instead "
                    "(see 'observe --serve --help').",
    )
    parser.add_argument("--workload", default="mst",
                        help="workload name (default mst)")
    parser.add_argument("--protocol", default="hmg",
                        help="protocol name (default hmg)")
    parser.add_argument("--engine", default="detailed",
                        choices=("detailed", "throughput"),
                        help="timing engine (default detailed: exact "
                             "message timing; throughput: analytic "
                             "per-phase intervals, zero-duration events)")
    parser.add_argument("--scale", type=float, default=1 / 16,
                        help="capacity scale factor (default 1/16)")
    parser.add_argument("--ops-scale", type=float, default=1.0,
                        help="trace-length multiplier (default 1.0)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--placement", default="first_touch")
    parser.add_argument("--fault-plan", default=None, metavar="NAME",
                        help="built-in fault plan to apply "
                             "(none/degraded/flaky/lossy)")
    parser.add_argument("--interval", type=float, default=None,
                        metavar="WIDTH",
                        help="sampler bin width (cycles for the "
                             "detailed engine, ops for throughput; "
                             "engine-appropriate default otherwise)")
    parser.add_argument("--out", default="observe-out", metavar="DIR",
                        help="artifact directory (default observe-out)")
    parser.add_argument("--registry", default=None, metavar="DIR",
                        help="run registry to announce this capture in "
                             "(default .repro-registry; the service "
                             "streams its intervals live from there)")
    parser.add_argument("--no-registry", action="store_true",
                        help="do not register the capture")
    parser.add_argument("--push-metrics", default=None, metavar="URL",
                        help="push this capture's interval windows to "
                             "an 'observe --serve' collector (strictly "
                             "out-of-band; artifacts on disk are "
                             "byte-identical either way)")
    parser.add_argument("--push-token", default=None, metavar="SECRET",
                        help="bearer token for --push-metrics "
                             "(default: $REPRO_OBSERVE_TOKEN)")
    return parser


def _flat_counters(counters: dict) -> dict:
    """Interval rows carry nested counters (per-link byte lists,
    message-type dicts); the wire schema wants flat finite numbers, so
    lists sum and nested dicts are skipped."""
    flat = {}
    for name, value in counters.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[name] = value
        elif isinstance(value, list) and all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in value):
            flat[name] = sum(value)
    return flat


def push_intervals(args, rows) -> None:
    """Push an observe capture's IntervalSampler windows, one window
    record per bin.  Best-effort by construction: drops are counted
    and reported on stderr, never raised."""
    import os

    from repro.telemetry.metrics import MetricsClient, cell_labels

    client = MetricsClient(
        args.push_metrics,
        token=(args.push_token
               or os.environ.get("REPRO_OBSERVE_TOKEN")),
        run=str(args.out),
        seed=args.seed,
    )
    labels = cell_labels(args.workload, args.protocol,
                         engine=args.engine, placement=args.placement,
                         source="observe")
    for row in rows:
        counters = _flat_counters(row.get("counters", {}))
        if counters:
            client.emit_window("interval", row["t0"], row["t1"],
                               row.get("unit", "cycles"), counters,
                               labels=labels)
    client.close()
    print(client.summary(), file=sys.stderr)


def observe(args) -> Path:
    """Run the cell and write all artifacts; returns the out dir."""
    from repro.engine.simulator import simulate
    from repro.telemetry.interval import read_jsonl
    from repro.telemetry.manifest import (cell_manifest, cell_slug,
                                          perf_sidecar, write_json)
    from repro.telemetry.report import render_report
    from repro.telemetry.session import TelemetrySession
    from repro.trace.workloads import WORKLOADS

    cfg = SystemConfig.paper_scaled(args.scale)
    trace = list(WORKLOADS[args.workload].generate(
        cfg, seed=args.seed, ops_scale=args.ops_scale
    ))
    plan = None
    if args.fault_plan is not None:
        from repro.faults import make_fault_plan

        plan = make_fault_plan(args.fault_plan, seed=args.seed)

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    if not getattr(args, "no_registry", False):
        # Announce the capture up front so a running observability
        # service can stream its intervals the moment they land.
        from repro.telemetry.session import DEFAULT_REGISTRY, RunRegistry

        RunRegistry(args.registry or DEFAULT_REGISTRY).register_observe(
            out,
            slug=cell_slug(args.workload, args.protocol, cfg,
                           args.placement, plan),
            cell={"workload": args.workload, "protocol": args.protocol,
                  "engine": args.engine, "seed": args.seed},
        )

    time_unit = "cycles" if args.engine == "detailed" else "ops"
    session = TelemetrySession.recording(cfg, interval=args.interval,
                                         time_unit=time_unit)
    result = simulate(
        trace, cfg,
        protocol=args.protocol,
        engine=args.engine,
        placement=args.placement,
        workload_name=args.workload,
        fault_plan=plan,
        telemetry=session,
    )

    session.tracer.write(out / "trace.json")
    session.sampler.write_jsonl(out / "intervals.jsonl")
    manifest = cell_manifest(
        result, workload=args.workload, protocol=args.protocol, cfg=cfg,
        placement=args.placement, fault_plan=plan, seed=args.seed,
        ops_scale=args.ops_scale, engine=args.engine,
    )
    write_json(out / "metrics.json", manifest)
    write_json(out / "perf.json", perf_sidecar(result))

    # Render from the *written* artifacts — every observe run doubles
    # as a round-trip check of the trace and interval formats.
    trace_doc = json.loads((out / "trace.json").read_text())
    intervals = read_jsonl(out / "intervals.jsonl")
    manifest = json.loads((out / "metrics.json").read_text())
    (out / "report.md").write_text(
        render_report(manifest, intervals, trace_doc)
    )
    if getattr(args, "push_metrics", None):
        push_intervals(args, intervals)
    return out


def build_registry_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments observe registry",
        description="Run-registry maintenance.",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    prune = sub.add_parser(
        "prune",
        help="compact registry.jsonl to its live records",
        description="Rewrite the registry to just its winning "
                    "(last-writer-wins) records, atomically.  The "
                    "registry is append-only — every status flip adds "
                    "a superseding line — so long-lived registries "
                    "accrete dead history this reclaims.",
    )
    prune.add_argument("--registry", default=None, metavar="DIR",
                       help="registry directory "
                            "(default .repro-registry)")
    prune.add_argument("--drop-missing", action="store_true",
                       help="also drop records whose directory no "
                            "longer exists on disk")
    prune.add_argument("--older-than", type=float, default=None,
                       metavar="DAYS",
                       help="also drop records last registered more "
                            "than DAYS days ago")
    prune.add_argument("--dry-run", action="store_true",
                       help="report what would be pruned; write nothing")
    return parser


def registry_main(argv) -> int:
    from repro.telemetry.session import DEFAULT_REGISTRY, RunRegistry

    args = build_registry_parser().parse_args(argv)
    registry = RunRegistry(args.registry or DEFAULT_REGISTRY)
    stats = registry.prune(drop_missing=args.drop_missing,
                           older_than_days=args.older_than,
                           dry_run=args.dry_run)
    verb = "would keep" if args.dry_run else "kept"
    print(f"registry {registry.path}: {verb} {stats['kept']} of "
          f"{stats['records_before']} record(s) "
          f"({stats['superseded']} superseded, "
          f"{stats['dropped']} dropped; "
          f"{stats['bytes_before']} -> {stats['bytes_after']} bytes)")
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "registry":
        # Registry maintenance ('observe registry prune ...').
        return registry_main(argv[1:])
    if "--serve" in argv:
        # The long-running observability service has its own argument
        # structure; hand everything else through to it.
        from repro.telemetry.serve import main as serve_main

        argv.remove("--serve")
        return serve_main(argv)
    args = build_parser().parse_args(argv)
    try:
        out = observe(args)
    except (KeyError, ValueError) as exc:
        print(f"observe: {exc}", file=sys.stderr)
        return 2
    for name in ("trace.json", "intervals.jsonl", "metrics.json",
                 "perf.json", "report.md"):
        print(f"wrote {out / name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
