"""Per-cell run manifests (``<slug>.metrics.json``) and perf sidecars.

Every sweep cell run under ``--telemetry DIR`` leaves a manifest: a
deterministic JSON digest of the cell's identity (workload, protocol,
config fingerprint, placement, fault plan) and its results (cycles,
bottleneck, hit rates, traffic, degradation counters).  Manifests are
written by the *parent* process in request order regardless of
``--jobs``, and contain no wall-clock fields, so a serial and a
parallel sweep produce byte-identical files — the property CI diffs.

Host-performance numbers (``SimResult.wall_seconds`` /
``ops_per_second``) are inherently nondeterministic, so they live in a
``<slug>.perf.json`` sidecar next to each manifest: the perf
trajectory is captured per cell without poisoning the deterministic
artifact set.
"""

from __future__ import annotations

import json
from pathlib import Path

# NOTE: annotations below reference repro.engine.stats.SimResult, but the
# import stays out of module scope — the engines import
# repro.core.protocol, which imports this package for NULL_TRACER.

#: Manifest format version; bump on any key change.
SCHEMA = 1


def _fingerprints(cfg, fault_plan):
    from repro.experiments.parallel import (config_fingerprint,
                                            plan_fingerprint)

    return config_fingerprint(cfg), plan_fingerprint(fault_plan)


def cell_slug(workload: str, protocol: str, cfg, placement: str,
              fault_plan=None) -> str:
    """Filesystem-safe unique name for one sweep cell."""
    cfg_fp, plan_fp = _fingerprints(cfg, fault_plan)
    parts = [workload, protocol, cfg_fp[:8], placement]
    if fault_plan is not None:
        parts.append(f"{fault_plan.name}-{plan_fp[:8]}")
    return "-".join(p.replace("/", "_") for p in parts)


def cell_manifest(result: SimResult, *, workload: str, protocol: str,
                  cfg, placement: str = "first_touch", fault_plan=None,
                  seed: int = None, ops_scale: float = None,
                  engine: str = "throughput") -> dict:
    """Deterministic digest of one completed cell."""
    cfg_fp, plan_fp = _fingerprints(cfg, fault_plan)
    name, index, cycles = result.resources.bottleneck()
    return {
        "schema": SCHEMA,
        "cell": {
            "workload": workload,
            "protocol": protocol,
            "engine": engine,
            "placement": placement,
            "config_fingerprint": cfg_fp,
            "fault_plan": (
                {"name": fault_plan.name, "fingerprint": plan_fp}
                if fault_plan is not None else None
            ),
            "seed": seed,
            "ops_scale": ops_scale,
        },
        "platform": {
            "num_gpus": cfg.num_gpus,
            "gpms_per_gpu": cfg.gpms_per_gpu,
        },
        "time": {
            "cycles": result.cycles,
            "seconds": result.seconds,
            "bottleneck": {"resource": name, "index": index,
                           "cycles": cycles},
            "resource_maxima": result.resources.class_maxima(),
        },
        "work": {
            "ops": result.ops,
            "l1": {"hits": result.l1_stats.hits,
                   "misses": result.l1_stats.misses,
                   "hit_rate": result.l1_stats.hit_rate},
            "l2": {"hits": result.l2_stats.hits,
                   "misses": result.l2_stats.misses,
                   "hit_rate": result.l2_stats.hit_rate},
        },
        "traffic": {
            "dram_bytes": result.dram_bytes,
            "inter_gpu_bytes": result.inter_gpu_bytes,
            "link_bytes": [list(pair) for pair in result.link_bytes],
            "xbar_bytes": list(result.xbar_bytes),
            "messages": {
                mtype.name: {
                    "count": result.stats.msg_counts.get(mtype, 0),
                    "bytes": result.stats.msg_bytes.get(mtype, 0),
                }
                for mtype in sorted(result.stats.msg_counts)
            },
            "inv_messages": result.stats.inv_messages,
            "inv_bytes": result.stats.inv_bytes,
        },
        "degradation": (result.degradation.as_dict()
                        if result.degradation is not None else None),
    }


def perf_sidecar(result: SimResult) -> dict:
    """Host-performance record (nondeterministic by nature)."""
    return {
        "schema": SCHEMA,
        "wall_seconds": result.wall_seconds,
        "ops_per_second": result.ops_per_second,
    }


def write_json(path, payload: dict) -> None:
    """Canonical serialization: sorted keys, 2-space indent, newline."""
    Path(path).write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n"
    )


def write_cell_artifacts(out_dir, result: SimResult, *, workload: str,
                         protocol: str, cfg, placement: str,
                         fault_plan=None, seed: int = None,
                         ops_scale: float = None,
                         engine: str = "throughput") -> str:
    """Write ``<slug>.metrics.json`` + ``<slug>.perf.json``; returns slug."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    slug = cell_slug(workload, protocol, cfg, placement, fault_plan)
    manifest = cell_manifest(
        result, workload=workload, protocol=protocol, cfg=cfg,
        placement=placement, fault_plan=fault_plan, seed=seed,
        ops_scale=ops_scale, engine=engine,
    )
    write_json(out / f"{slug}.metrics.json", manifest)
    write_json(out / f"{slug}.perf.json", perf_sidecar(result))
    return slug


def write_run_manifest(out_dir, *, experiments, settings: dict,
                       cells: list) -> None:
    """Sweep-level index: which experiments ran, with what settings,
    and which cell manifests they produced.  Deliberately excludes
    wall-clock times and the job count so serial and parallel runs of
    the same sweep write identical bytes."""
    write_json(Path(out_dir) / "run.json", {
        "schema": SCHEMA,
        "experiments": list(experiments),
        "settings": settings,
        "cells": list(cells),
    })
