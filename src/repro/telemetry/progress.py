"""Live stderr progress line for parallel sweeps.

Cheap and order-independent: the executor reports completions as they
happen (any order), the progress line shows cells done, throughput,
ETA, and the bottleneck class of the most recently finished cell.  On
a TTY the line redraws in place; on a pipe (CI logs) intermediate
updates are suppressed and a single summary prints at close, so
captured output stays small and deterministic runs stay diffable
(progress goes to stderr only — stdout is untouched).
"""

from __future__ import annotations

import sys
import time


class SweepProgress:
    """Tracks and renders completion of a batch of sweep cells."""

    def __init__(self, total: int, stream=None, clock=time.monotonic):
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock
        self.start = clock()
        self.done = 0
        self.last_bottleneck = "-"
        self._live = getattr(self.stream, "isatty", lambda: False)()
        self._dirty = False

    def update(self, result=None) -> None:
        """Record one completed cell (with its result, if available)."""
        self.done += 1
        if result is not None:
            self.last_bottleneck = result.resources.bottleneck()[0]
        if self._live:
            self.stream.write("\r" + self._line())
            self.stream.flush()
            self._dirty = True

    def _line(self) -> str:
        elapsed = max(self.clock() - self.start, 1e-9)
        rate = self.done / elapsed
        remaining = self.total - self.done
        eta = remaining / rate if rate > 0 else float("inf")
        return (f"[sweep] {self.done}/{self.total} cells"
                f" | {rate:.1f} cells/s"
                f" | ETA {eta:.0f}s"
                f" | bottleneck {self.last_bottleneck}")

    def close(self) -> None:
        """Finish the line (TTY) or print the one-shot summary (pipe)."""
        if self._dirty:
            self.stream.write("\n")
        elif self.done:
            elapsed = self.clock() - self.start
            self.stream.write(
                f"[sweep] {self.done}/{self.total} cells in "
                f"{elapsed:.1f}s | last bottleneck "
                f"{self.last_bottleneck}\n"
            )
        self.stream.flush()
