"""Structured event tracing with a zero-overhead-when-off contract.

A :class:`Tracer` receives the protocol- and engine-level events one
simulation produces: message sends/deliveries/retransmissions,
invalidation fan-outs, cache fills and evictions, and fault-window
open/close edges.  The default is the :data:`NULL_TRACER` singleton,
whose ``enabled`` flag is ``False``; every instrumentation site in the
hot path guards on that flag (one attribute load and branch), so a run
without telemetry does no event formatting, no allocation, and no
method dispatch — the contract :mod:`tools.check_perf` enforces.

:class:`ChromeTracer` is the recording implementation.  It collects
events in memory and exports them as Chrome trace-event JSON (the
format ``chrome://tracing`` and Perfetto load): one thread track per
GPM, plus per-GPU link tracks for inter-GPU traffic and crossbars.
Timestamps are simulated cycles (detailed engine) or trace-op indices
(throughput engine); either way they are deterministic, so two runs of
the same cell produce byte-identical traces.
"""

from __future__ import annotations

import json

#: Synthetic thread ids for the non-GPM tracks of one GPU's process.
TID_LINK_OUT = 100
TID_LINK_IN = 101
TID_XBAR = 102
#: Per-GPM auxiliary tracks (offset by the GPM index within its GPU).
TID_DRAM_BASE = 200
TID_L2_BASE = 300


class Tracer:
    """Event-sink interface; the base class ignores everything.

    ``enabled`` is the hot-path guard: instrumentation sites read it
    before building event arguments, so a disabled tracer costs one
    attribute load per *potential* event, not one call.
    """

    enabled = False

    #: Current timestamp, advanced by the driving engine before each
    #: trace op is processed; protocol-side events are stamped with it.
    now = 0.0

    def set_time(self, t: float) -> None:
        self.now = t

    # -- engine-side events (explicit timestamps) ----------------------

    def message(self, mtype, src, dst, size: int, t0: float, t1: float,
                scope=None) -> None:
        """One coherence message in flight from ``t0`` to ``t1``."""

    def retransmit(self, mtype, src, dst, size: int, t0: float,
                   t1: float, attempt: int) -> None:
        """One recovery retransmission (lossy fault plans)."""

    def fault_window(self, link_name: str, t0: float, t1: float,
                     bandwidth_factor: float) -> None:
        """A fault-plan degradation window on one link."""

    # -- protocol-side events (stamped with ``now``) -------------------

    def fanout(self, home, sharers: int, dropped: int, cause: str,
               scope=None) -> None:
        """One invalidation fan-out from a home node."""

    def fill(self, level: str, node, line: int) -> None:
        """A cache fill at ``level`` ('l1'/'l2') of ``node``."""

    def evict(self, level: str, node, line: int, dirty: bool) -> None:
        """A cache eviction at ``level`` of ``node``."""

    def bulk_invalidate(self, node, level: str, dropped: int) -> None:
        """A flash/bulk invalidation (acquire or kernel boundary)."""

    def instant(self, name: str, node, args: dict = None) -> None:
        """A named instantaneous protocol event at ``now``."""

    # -- fabric-side events (host wall-clock domain) -------------------

    def fabric(self, kind: str, args: dict = None) -> None:
        """One sweep-fabric scheduling event (retry, steal, timeout,
        reassign, failure) — host-level orchestration, not simulation."""


class NullTracer(Tracer):
    """Explicitly-named no-op tracer (``enabled`` stays ``False``)."""


#: Shared default tracer; protocols are born pointing at it.
NULL_TRACER = NullTracer()


class ChromeTracer(Tracer):
    """Records events and exports Chrome trace-event JSON.

    ``gpms_per_gpu`` maps flat GPM indices and link names onto
    (pid, tid) tracks: pid is the GPU index, tid the GPM index within
    it, with synthetic tids for link/crossbar/DRAM/L2 tracks.
    """

    enabled = True

    def __init__(self, gpms_per_gpu: int, num_gpus: int,
                 time_label: str = "cycles"):
        self.gpms_per_gpu = gpms_per_gpu
        self.num_gpus = num_gpus
        self.time_label = time_label
        self.now = 0.0
        #: Raw event dicts in emission order (pre-sort).
        self.events: list = []
        #: Fan-out sharer-count histogram (sharers -> occurrences).
        self.fanout_hist: dict = {}
        #: (src_gpu, dst_gpu) -> bytes, for the link-hog report.
        self.pair_bytes: dict = {}

    # ------------------------------------------------------------------
    # Track mapping
    # ------------------------------------------------------------------

    def _node_track(self, node) -> tuple:
        """(pid, tid) of a GPM's main track."""
        return node.gpu, node.gpm

    def _link_track(self, link_name: str) -> tuple:
        """(pid, tid) for a named link resource.

        ``link_out[g]``/``link_in[g]``/``xbar[g]`` index GPUs;
        ``dram[i]``/``l2[i]`` index flat GPMs.
        """
        kind, _, rest = link_name.partition("[")
        index = int(rest.rstrip("]"))
        if kind == "link_out":
            return index, TID_LINK_OUT
        if kind == "link_in":
            return index, TID_LINK_IN
        if kind == "xbar":
            return index, TID_XBAR
        gpu, gpm = divmod(index, self.gpms_per_gpu)
        base = TID_DRAM_BASE if kind == "dram" else TID_L2_BASE
        return gpu, base + gpm

    # ------------------------------------------------------------------
    # Event sinks
    # ------------------------------------------------------------------

    def message(self, mtype, src, dst, size, t0, t1, scope=None):
        pid, tid = self._node_track(src)
        self.events.append({
            "name": mtype.name, "cat": "msg", "ph": "X",
            "ts": t0, "dur": max(t1 - t0, 0.0), "pid": pid, "tid": tid,
            "args": {
                "src": f"gpu{src.gpu}.gpm{src.gpm}",
                "dst": f"gpu{dst.gpu}.gpm{dst.gpm}",
                "bytes": size,
                "scope": scope.name.lower() if scope is not None else None,
            },
        })
        if src.gpu != dst.gpu:
            key = (src.gpu, dst.gpu)
            self.pair_bytes[key] = self.pair_bytes.get(key, 0) + size

    def retransmit(self, mtype, src, dst, size, t0, t1, attempt):
        pid, tid = self._node_track(src)
        self.events.append({
            "name": f"retry:{mtype.name}", "cat": "retransmit", "ph": "X",
            "ts": t0, "dur": max(t1 - t0, 0.0), "pid": pid, "tid": tid,
            "args": {
                "dst": f"gpu{dst.gpu}.gpm{dst.gpm}",
                "bytes": size, "attempt": attempt,
            },
        })

    def fault_window(self, link_name, t0, t1, bandwidth_factor):
        pid, tid = self._link_track(link_name)
        self.events.append({
            "name": ("outage" if bandwidth_factor == 0
                     else f"degraded x{bandwidth_factor:g}"),
            "cat": "fault", "ph": "X",
            "ts": t0, "dur": max(t1 - t0, 0.0), "pid": pid, "tid": tid,
            "args": {"link": link_name,
                     "bandwidth_factor": bandwidth_factor},
        })

    def fanout(self, home, sharers, dropped, cause, scope=None):
        pid, tid = self._node_track(home)
        self.events.append({
            "name": f"inv_fanout:{cause}", "cat": "fanout", "ph": "i",
            "ts": self.now, "pid": pid, "tid": tid, "s": "t",
            "args": {
                "sharers": sharers, "lines_dropped": dropped,
                "scope": scope.name.lower() if scope is not None else None,
            },
        })
        self.fanout_hist[sharers] = self.fanout_hist.get(sharers, 0) + 1

    def fill(self, level, node, line):
        pid, tid = self._node_track(node)
        self.events.append({
            "name": f"{level}_fill", "cat": "cache", "ph": "i",
            "ts": self.now, "pid": pid, "tid": tid, "s": "t",
            "args": {"line": line},
        })

    def evict(self, level, node, line, dirty):
        pid, tid = self._node_track(node)
        self.events.append({
            "name": f"{level}_evict", "cat": "cache", "ph": "i",
            "ts": self.now, "pid": pid, "tid": tid, "s": "t",
            "args": {"line": line, "dirty": dirty},
        })

    def bulk_invalidate(self, node, level, dropped):
        pid, tid = self._node_track(node)
        self.events.append({
            "name": f"{level}_bulk_inv", "cat": "cache", "ph": "i",
            "ts": self.now, "pid": pid, "tid": tid, "s": "t",
            "args": {"lines_dropped": dropped},
        })

    def instant(self, name, node, args=None):
        pid, tid = self._node_track(node)
        self.events.append({
            "name": name, "cat": "protocol", "ph": "i",
            "ts": self.now, "pid": pid, "tid": tid, "s": "t",
            "args": args or {},
        })

    def fabric(self, kind, args=None):
        # Fabric events are host-side and have no GPM track; they land
        # on a synthetic pid so simulation tracks stay untouched.
        self.events.append({
            "name": f"fabric:{kind}", "cat": "fabric", "ph": "i",
            "ts": self.now, "pid": -1, "tid": 0, "s": "g",
            "args": args or {},
        })

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def _metadata_events(self) -> list:
        """process/thread name records so Perfetto labels the tracks."""
        meta = []
        for gpu in range(self.num_gpus):
            meta.append({"name": "process_name", "ph": "M", "pid": gpu,
                         "tid": 0, "args": {"name": f"GPU {gpu}"}})
            for gpm in range(self.gpms_per_gpu):
                meta.append({"name": "thread_name", "ph": "M", "pid": gpu,
                             "tid": gpm, "args": {"name": f"GPM {gpm}"}})
                meta.append({
                    "name": "thread_name", "ph": "M", "pid": gpu,
                    "tid": TID_DRAM_BASE + gpm,
                    "args": {"name": f"dram[{gpm}]"},
                })
                meta.append({
                    "name": "thread_name", "ph": "M", "pid": gpu,
                    "tid": TID_L2_BASE + gpm,
                    "args": {"name": f"l2[{gpm}]"},
                })
            for tid, label in ((TID_LINK_OUT, "link out"),
                               (TID_LINK_IN, "link in"),
                               (TID_XBAR, "xbar")):
                meta.append({"name": "thread_name", "ph": "M", "pid": gpu,
                             "tid": tid, "args": {"name": label}})
        return meta

    def chrome_trace(self) -> dict:
        """The full trace document, events sorted per track.

        Sorting by ``(pid, tid, ts)`` guarantees monotonic timestamps
        within every track regardless of the interleaving the event
        loop emitted them in (retries and parked deliveries can
        complete out of issue order).
        """
        events = sorted(
            self.events,
            key=lambda e: (e["pid"], e["tid"], e["ts"], e.get("dur", 0.0)),
        )
        return {
            "traceEvents": self._metadata_events() + events,
            "displayTimeUnit": "ms",
            "otherData": {"time_unit": self.time_label},
        }

    def write(self, path) -> None:
        """Serialize the trace document to ``path`` (deterministic)."""
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh, sort_keys=True)
            fh.write("\n")
