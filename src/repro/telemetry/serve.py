"""``python -m repro.experiments observe --serve`` — observability service.

A long-running, stdlib-only HTTP service over the telemetry substrate:
it discovers run/telemetry/store directories through the
:class:`~repro.telemetry.session.RunRegistry` (which the sweep CLI
registers into the moment a sweep starts), tails their artifacts, and
answers three kinds of questions without ever re-simulating:

* **What is running right now?**  ``/events`` is a Server-Sent-Events
  stream of registry and manifest activity (new runs, per-cell
  completions, fabric/failed-cell sidecars appearing);
  ``/cells/<slug>/intervals`` streams an observe capture's
  IntervalSampler windows as they are written.
* **Did anything regress?**  ``/runs`` and ``/regressions`` aggregate
  per-cell manifests + perf sidecars across every discovered run into
  the cross-run drift view (:mod:`repro.telemetry.aggregate`): engine
  ops/sec vs the committed ``BENCH_perf.json`` baseline — the
  ``check_perf`` gate over time — and per-protocol geomean-speedup
  drift.  ``/`` renders it as a self-contained HTML dashboard.
* **What did cell X produce?**  ``/store/scan`` and
  ``/store/cell/<key>`` expose the content-addressed
  :class:`~repro.experiments.store.ResultStore` as a query API (the
  same code path as ``python -m repro.experiments store``).
* **What are remote sweeps pushing?**  ``POST /ingest`` is the
  collector for the push-based metrics pipeline
  (:mod:`repro.telemetry.metrics`): typed record batches from sweep
  CLIs, fabric workers, and coordinators land in a CRC'd
  ``metrics.jsonl`` plus in-memory rollups
  (:mod:`repro.telemetry.tsdb`), served back as ``/metrics/query``
  JSON, Prometheus-style ``/metrics`` text, and live ``metrics``
  events on ``/events``.  With ``--serve-token`` (or
  ``REPRO_OBSERVE_TOKEN``) configured, mutating endpoints require a
  bearer token and each token scopes its pushes to a namespace, so
  several users or fleets can share one collector.

SSE framing: each event is ``event: <type>`` + ``data: <one JSON
line>`` + blank line; comment lines (``: tick``) are keepalives.
Shutdown is graceful: SIGINT/SIGTERM (or ``server.shutdown()``) stops
the accept loop, in-flight streams notice ``shutting_down`` within one
poll interval, and ``main`` returns 0.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import urlparse

from repro import __version__
from repro.telemetry.aggregate import (DEFAULT_TOLERANCE, load_bench,
                                       load_run, regression_view,
                                       result_digest, run_summary)
from repro.telemetry.metrics import TokenTable
from repro.telemetry.session import DEFAULT_REGISTRY, RunRegistry
from repro.telemetry.tsdb import METRICS_LOG, MetricsStore


def _find_bench() -> Path:
    """Locate ``BENCH_perf.json``: cwd upwards, then the source tree."""
    for base in [Path.cwd(), *Path.cwd().parents]:
        candidate = base / "BENCH_perf.json"
        if candidate.exists():
            return candidate
    candidate = Path(__file__).resolve().parents[3] / "BENCH_perf.json"
    return candidate if candidate.exists() else None


class Observatory:
    """Discovery + aggregation state shared by every handler thread.

    Stateless per request by design — every query re-reads the registry
    and the artifact files, so a sweep that starts after the service
    does is visible on the next poll, and no cache can go stale.
    """

    def __init__(self, registry_dir=DEFAULT_REGISTRY, run_dirs=(),
                 store_dirs=(), bench_path=None,
                 tolerance: float = DEFAULT_TOLERANCE,
                 poll: float = 0.5, metrics: MetricsStore = None,
                 tokens: TokenTable = None):
        self.registry_dir = Path(registry_dir) if registry_dir else None
        self.extra_run_dirs = [Path(d) for d in run_dirs]
        self.extra_store_dirs = [Path(d) for d in store_dirs]
        self.bench_path = bench_path
        self.tolerance = tolerance
        self.poll = poll
        self.started = time.time()
        if metrics is None:
            log = (self.registry_dir / METRICS_LOG
                   if self.registry_dir else None)
            metrics = MetricsStore(log)
        self.metrics = metrics
        self.tokens = tokens if tokens is not None else TokenTable()

    # -- discovery -----------------------------------------------------

    def registry_entries(self) -> list:
        if self.registry_dir is None or not self.registry_dir.is_dir():
            return []
        return RunRegistry(self.registry_dir).entries()

    def _dirs(self, kinds) -> list:
        seen: dict = {}
        for entry in self.registry_entries():
            if entry["kind"] in kinds:
                seen.setdefault(entry["dir"], entry)
        return list(seen.items())

    def run_dirs(self) -> list:
        """Ordered unique run directories (registry + explicit)."""
        dirs = [Path(d) for d, _ in self._dirs(("run", "observe"))]
        for extra in self.extra_run_dirs:
            if extra not in dirs:
                dirs.append(extra)
        return [d for d in dirs if d.is_dir()]

    def store_dirs(self) -> list:
        dirs = [Path(d) for d, _ in self._dirs(("store",))]
        for extra in self.extra_store_dirs:
            if extra not in dirs:
                dirs.append(extra)
        return [d for d in dirs if d.is_dir()]

    def runs(self) -> list:
        runs = []
        for directory in self.run_dirs():
            run = load_run(directory)
            if run is not None:
                runs.append(run)
        return runs

    # -- endpoint payloads ---------------------------------------------

    def runs_payload(self) -> dict:
        entries = self.registry_entries()
        status = {e["dir"]: e.get("info", {}).get("status")
                  for e in entries if e["kind"] == "run"}
        summaries = []
        for run in self.runs():
            summary = run_summary(run)
            summary["status"] = status.get(run["dir"])
            summaries.append(summary)
        return {
            "registry": str(self.registry_dir)
            if self.registry_dir else None,
            "runs": summaries,
            "stores": [str(d) for d in self.store_dirs()],
        }

    def regressions_payload(self) -> dict:
        return regression_view(self.runs(),
                               load_bench(self.bench_path),
                               tolerance=self.tolerance)

    def fleet_payload(self) -> dict:
        """Distributed-sweep fleets the registry knows about: worker
        liveness and lease state, as last published by each fabric-net
        coordinator (kind="fleet" records)."""
        fleets = []
        for entry in self.registry_entries():
            if entry["kind"] != "fleet":
                continue
            info = entry.get("info", {})
            fleets.append({
                "dir": entry["dir"],
                "registered": entry.get("registered"),
                "status": info.get("status"),
                "coordinator": info.get("coordinator"),
                "workers": info.get("workers", []),
                "leases": info.get("leases"),
                "stats": info.get("stats"),
            })
        return {"fleets": fleets}

    def healthz_payload(self) -> dict:
        ingest = self.metrics.stats()
        return {
            "ok": True,
            "version": __version__,
            "uptime_seconds": round(time.time() - self.started, 3),
            "registry": str(self.registry_dir)
            if self.registry_dir else None,
            "auth_required": self.tokens.required,
            "ingest_queue_depth": ingest["queue_depth"],
            "ingest": ingest,
        }

    def store_scan_payload(self) -> dict:
        from repro.experiments.store import ResultStore

        stores = []
        for directory in self.store_dirs():
            store = ResultStore(directory)
            try:
                stores.append(store.summary())
            finally:
                store.close()
        return {
            "stores": stores,
            "records": sum(s["records"] for s in stores),
            "corrupt_records": sum(s["corrupt_records"]
                                   for s in stores),
        }

    def store_cell_payload(self, key: str) -> dict:
        from repro.experiments.store import ResultStore

        for directory in self.store_dirs():
            store = ResultStore(directory)
            try:
                result = store.get(key)
            finally:
                store.close()
            if result is not None:
                return {"key": key, "store": str(directory),
                        "result": result_digest(result)}
        return None

    def intervals_path(self, slug: str) -> Path:
        """The intervals.jsonl behind ``/cells/<slug>/intervals``.

        Matches registered observe captures by exact slug, then by slug
        prefix (slugs embed config fingerprints callers may truncate),
        then any run directory holding ``<slug>.intervals.jsonl``.
        """
        observes = [e for e in self.registry_entries()
                    if e["kind"] == "observe"]
        for exact in (True, False):
            for entry in observes:
                known = entry.get("info", {}).get("slug") or ""
                match = known == slug if exact \
                    else known.startswith(slug)
                path = Path(entry["dir"]) / "intervals.jsonl"
                if match and slug and path.exists():
                    return path
        for directory in self.run_dirs():
            path = directory / f"{slug}.intervals.jsonl"
            if path.exists():
                return path
        return None

    def close(self) -> None:
        pass  # no persistent handles; symmetric with main()'s flush


class ObservatoryServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, observatory: Observatory,
                 quiet: bool = True):
        super().__init__(address, ObservatoryHandler)
        self.observatory = observatory
        self.quiet = quiet
        #: Streaming handlers poll this to end gracefully.
        self.shutting_down = False


class ObservatoryHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-observe/1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, fmt, *args):
        if not self.server.quiet:
            super().log_message(fmt, *args)

    def _send_json(self, payload, status: int = 200) -> None:
        body = (json.dumps(payload, indent=2, sort_keys=True)
                + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Access-Control-Allow-Origin", "*")
        self.end_headers()
        self.wfile.write(body)

    def _send_html(self, html: str) -> None:
        body = html.encode()
        self.send_response(200)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, text: str, status: int = 200) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type",
                         "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Access-Control-Allow-Origin", "*")
        self.end_headers()
        self.wfile.write(body)

    def _bearer_token(self):
        header = self.headers.get("Authorization", "")
        scheme, _, credential = header.partition(" ")
        if scheme.lower() == "bearer" and credential.strip():
            return credential.strip()
        return None

    def _resolve_namespace(self):
        """(authorized, namespace) for a mutating request.

        With no token table, everything is authorized and the client's
        claimed namespace (or the default) stands.  With tokens
        configured, a missing or unknown bearer token is refused — and
        counted — before the body is even parsed.
        """
        tokens = self.server.observatory.tokens
        if not tokens.required:
            return True, None
        namespace = tokens.resolve(self._bearer_token())
        if namespace is None:
            self.server.observatory.metrics.unauthorized += 1
            return False, None
        return True, namespace

    def _start_sse(self) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.send_header("Access-Control-Allow-Origin", "*")
        self.end_headers()

    def _sse(self, event: str, data) -> None:
        frame = f"event: {event}\ndata: {json.dumps(data, sort_keys=True)}\n\n"
        self.wfile.write(frame.encode())
        self.wfile.flush()

    def _sse_keepalive(self) -> None:
        self.wfile.write(b": tick\n\n")
        self.wfile.flush()

    # -- routing -------------------------------------------------------

    def do_GET(self):
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = dict(
            pair.split("=", 1) if "=" in pair else (pair, "")
            for pair in url.query.split("&") if pair
        )
        obs = self.server.observatory
        try:
            if not parts:
                return self._send_html(DASHBOARD_HTML)
            if parts == ["healthz"]:
                return self._send_json(obs.healthz_payload())
            if parts == ["metrics"]:
                return self._send_text(obs.metrics.prometheus_text())
            if parts == ["metrics", "query"]:
                return self._send_json(obs.metrics.query(
                    namespace=query.get("namespace") or None,
                    run=query.get("run") or None,
                    metric=query.get("metric") or None,
                ))
            if parts == ["runs"]:
                return self._send_json(obs.runs_payload())
            if parts == ["regressions"]:
                return self._send_json(obs.regressions_payload())
            if parts == ["fleet"]:
                return self._send_json(obs.fleet_payload())
            if parts == ["store", "scan"]:
                return self._send_json(obs.store_scan_payload())
            if len(parts) == 3 and parts[:2] == ["store", "cell"]:
                payload = obs.store_cell_payload(parts[2])
                if payload is None:
                    return self._send_json(
                        {"error": f"no record under key {parts[2]}"},
                        status=404)
                return self._send_json(payload)
            if parts == ["events"]:
                return self._stream_events()
            if len(parts) == 3 and parts[0] == "cells" \
                    and parts[2] == "intervals":
                return self._stream_intervals(parts[1], query)
            return self._send_json(
                {"error": f"no route for {url.path}"}, status=404)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to salvage

    def do_POST(self):
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["ingest"]:
                return self._ingest()
            return self._send_json(
                {"error": f"no route for POST {url.path}"}, status=404)
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _ingest(self) -> None:
        """Collector endpoint for pushed metric batches.

        Auth is checked before the body is read; the body is bounded;
        validation rejections come back in the 200 reply so the client
        can count them.  Anything structurally unusable is a 400 — the
        client treats 4xx as non-retryable by design."""
        obs = self.server.observatory
        authorized, namespace = self._resolve_namespace()
        if not authorized:
            return self._send_json(
                {"error": "missing or unknown bearer token"},
                status=401)
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = 0
        if length <= 0 or length > 8 * 1024 * 1024:
            return self._send_json(
                {"error": "missing or oversized body"}, status=400)
        try:
            payload = json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return self._send_json(
                {"error": "body is not JSON"}, status=400)
        try:
            reply = obs.metrics.ingest(payload, namespace=namespace)
        except ValueError as exc:
            return self._send_json({"error": str(exc)}, status=400)
        return self._send_json(reply)

    # -- SSE streams ---------------------------------------------------

    def _stream_intervals(self, slug: str, query: dict) -> None:
        """Tail one capture's interval JSONL as SSE, window by window."""
        obs = self.server.observatory
        path = obs.intervals_path(slug)
        if path is None:
            return self._send_json(
                {"error": f"no intervals for cell {slug}"}, status=404)
        follow = query.get("follow", "1") not in ("0", "false")
        self._start_sse()
        self._sse("cell", {"slug": slug, "path": str(path)})
        offset = 0
        buffered = b""
        while True:
            with open(path, "rb") as fh:
                fh.seek(offset)
                chunk = fh.read()
            offset += len(chunk)
            buffered += chunk
            while b"\n" in buffered:
                line, buffered = buffered.split(b"\n", 1)
                if line.strip():
                    try:
                        row = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn tail; retry on next growth
                    self._sse("interval", row)
            if not follow:
                self._sse("end", {"rows": True})
                return
            if self.server.shutting_down:
                self._sse("end", {"reason": "server shutdown"})
                return
            self._sse_keepalive()
            time.sleep(obs.poll)

    def _stream_events(self) -> None:
        """Registry-wide activity stream: runs, cells, sidecars."""
        obs = self.server.observatory
        self._start_sse()
        known_runs: set = set()
        known_cells: dict = {}
        known_sidecars: set = set()
        # Start the metrics cursor at "now": the snapshot covers the
        # past; the stream is for what happens from here on.
        metrics_cursor, _ = obs.metrics.events_since(1 << 62)
        payload = obs.runs_payload()
        self._sse("snapshot", {
            "runs": len(payload["runs"]),
            "stores": len(payload["stores"]),
            "metric_series": obs.metrics.stats()["series"],
        })
        while True:
            metrics_cursor, pushed = obs.metrics.events_since(
                metrics_cursor)
            for event in pushed:
                self._sse("metrics", event)
            for directory in obs.run_dirs():
                name = str(directory)
                if name not in known_runs:
                    known_runs.add(name)
                    known_cells[name] = set()
                    self._sse("run", {"dir": name})
                seen = known_cells[name]
                for manifest in sorted(directory.glob("*.metrics.json")):
                    slug = manifest.name[:-len(".metrics.json")]
                    if slug not in seen:
                        seen.add(slug)
                        self._sse("cell", {"dir": name, "slug": slug})
                for sidecar in ("fabric.json", "failed_cells.json",
                                "run.json"):
                    path = directory / sidecar
                    if path.exists() and str(path) not in known_sidecars:
                        known_sidecars.add(str(path))
                        self._sse("sidecar",
                                  {"dir": name, "file": sidecar})
            if self.server.shutting_down:
                self._sse("end", {"reason": "server shutdown"})
                return
            self._sse_keepalive()
            time.sleep(obs.poll)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments observe --serve",
        description="Live observability service: SSE streaming of "
                    "in-flight sweeps, cross-run regression dashboard, "
                    "and results-store query API.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765,
                        help="listen port (default 8765; 0 picks a "
                             "free port and prints it)")
    parser.add_argument("--registry", default=DEFAULT_REGISTRY,
                        metavar="DIR",
                        help="run registry to discover sweeps from "
                             f"(default {DEFAULT_REGISTRY})")
    parser.add_argument("--runs", nargs="*", default=[], metavar="DIR",
                        help="extra telemetry run directories to index")
    parser.add_argument("--store", nargs="*", default=[], metavar="DIR",
                        help="extra results-store directories to serve")
    parser.add_argument("--bench", default=None, metavar="FILE",
                        help="BENCH_perf.json for regression baselines "
                             "(default: auto-discover)")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="fractional drop that flags a regression "
                             "(default 0.30, matching check_perf)")
    parser.add_argument("--poll", type=float, default=0.5,
                        metavar="SECONDS",
                        help="SSE tail/poll interval (default 0.5)")
    parser.add_argument("--serve-token", action="append", default=[],
                        metavar="[NS=]SECRET",
                        help="require this bearer token on mutating "
                             "endpoints (repeatable; NS= names the "
                             "token's namespace, else one is derived "
                             "from the secret; REPRO_OBSERVE_TOKEN "
                             "adds another)")
    parser.add_argument("--metrics-window", type=float, default=10.0,
                        metavar="SECONDS",
                        help="rollup window width for pushed metrics "
                             "(default 10)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every request to stderr")
    return parser


def create_server(args) -> ObservatoryServer:
    bench = Path(args.bench) if args.bench else _find_bench()
    specs = list(args.serve_token or [])
    env_token = os.environ.get("REPRO_OBSERVE_TOKEN")
    if env_token:
        specs.append(env_token)
    registry_dir = Path(args.registry) if args.registry else None
    metrics = MetricsStore(
        registry_dir / METRICS_LOG if registry_dir else None,
        window=args.metrics_window,
    )
    observatory = Observatory(
        registry_dir=args.registry, run_dirs=args.runs,
        store_dirs=args.store, bench_path=bench,
        tolerance=args.tolerance, poll=args.poll,
        metrics=metrics, tokens=TokenTable(specs),
    )
    return ObservatoryServer((args.host, args.port), observatory,
                             quiet=not args.verbose)


def run(server: ObservatoryServer) -> int:
    """Serve until interrupted or ``server.shutdown()``; returns 0.

    The flush path is unconditional: streams are told to end
    (``shutting_down``), the listening socket closes, and the
    observatory releases anything it holds — so a Ctrl-C mid-stream
    still exits 0 with every connection accounted for.
    """
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.shutting_down = True
        server.server_close()
        server.observatory.close()
        print("observability service: shut down cleanly",
              file=sys.stderr)
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    server = create_server(args)
    host, port = server.server_address[:2]
    print(f"observability service on http://{host}:{port}/ "
          f"(registry {args.registry}; Ctrl-C to stop)",
          file=sys.stderr)
    if threading.current_thread() is threading.main_thread():
        def _terminate(_signum, _frame):
            raise KeyboardInterrupt

        signal.signal(signal.SIGTERM, _terminate)
    return run(server)


# ----------------------------------------------------------------------
# Dashboard (self-contained; fetches the JSON endpoints above)
# ----------------------------------------------------------------------

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>HMG repro — observability</title>
<meta name="viewport" content="width=device-width, initial-scale=1">
<style>
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb; --surface-2: #f0efec;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --grid: #e3e2de; --series-1: #2a78d6;
  --status-good: #008300; --status-bad: #e34948;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --surface-2: #383835;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --grid: #3d3c39; --series-1: #3987e5;
    --status-good: #35b158; --status-bad: #e66767;
  }
}
body { margin: 0; }
.viz-root {
  font: 14px/1.45 system-ui, sans-serif;
  background: var(--surface-1); color: var(--text-primary);
  min-height: 100vh; padding: 24px;
}
h1 { font-size: 19px; margin: 0 0 2px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.sub { color: var(--text-secondary); margin: 0 0 20px; }
.tiles { display: flex; gap: 12px; flex-wrap: wrap; }
.tile {
  background: var(--surface-2); border-radius: 8px;
  padding: 12px 16px; min-width: 150px;
}
.tile .v { font-size: 22px; font-weight: 600; }
.tile .k { color: var(--text-secondary); font-size: 12px; }
table { border-collapse: collapse; width: 100%; max-width: 980px; }
th, td {
  text-align: left; padding: 5px 10px;
  border-bottom: 1px solid var(--grid); font-variant-numeric: tabular-nums;
}
th { color: var(--text-secondary); font-weight: 500; font-size: 12px; }
td.num, th.num { text-align: right; }
.flag { color: var(--status-bad); font-weight: 600; }
.ok { color: var(--status-good); }
svg text { fill: var(--text-secondary); font-size: 11px; }
.chart-wrap { max-width: 760px; }
#events {
  max-width: 980px; max-height: 200px; overflow-y: auto;
  background: var(--surface-2); border-radius: 8px; padding: 8px 12px;
  font-family: ui-monospace, monospace; font-size: 12px;
  color: var(--text-secondary);
}
#tip {
  position: fixed; pointer-events: none; display: none;
  background: var(--surface-2); color: var(--text-primary);
  border: 1px solid var(--grid); border-radius: 6px;
  padding: 4px 8px; font-size: 12px;
}
</style>
</head>
<body>
<div class="viz-root">
<h1>HMG reproduction — live observability</h1>
<p class="sub">Engine throughput vs the committed baseline, cross-run
geomean-speedup drift, and in-flight sweep activity.</p>
<div class="tiles" id="tiles"></div>
<h2>Engine throughput history <span class="sub">(ops/sec,
BENCH_perf.json history + discovered runs)</span></h2>
<div class="chart-wrap"><svg id="perf" width="760" height="240"
  role="img" aria-label="ops per second over time"></svg></div>
<h2>Runs</h2>
<table id="runs"><thead><tr>
  <th>run directory</th><th>status</th><th class="num">cells</th>
  <th class="num">failed</th><th class="num">ops/sec</th>
  <th class="num">vs baseline</th><th>gate</th>
</tr></thead><tbody></tbody></table>
<h2>Fleet <span class="sub">(distributed sweep workers and lease
state, as last published by each fabric-net coordinator)</span></h2>
<table id="fleet"><thead><tr>
  <th>sweep</th><th>coordinator</th><th>worker</th><th>state</th>
  <th class="num">cells done</th><th class="num">silent (s)</th>
  <th class="num">leases out</th><th class="num">reclaimed</th>
</tr></thead><tbody></tbody></table>
<h2>Lease health <span class="sub">(coordinator counters: every
lease, reclaim cause, retry, and rejected frame)</span></h2>
<table id="lease-health"><thead><tr>
  <th>sweep</th><th class="num">leases</th><th class="num">reclaims</th>
  <th class="num">eof</th><th class="num">heartbeat</th>
  <th class="num">deadline</th><th class="num">retries</th>
  <th class="num">stale</th><th class="num">auth rej</th>
  <th class="num">byes</th>
</tr></thead><tbody></tbody></table>
<h2>Fleet throughput <span class="sub">(pushed metrics: per-cell
engine ops/sec rollups from /metrics/query — empty until a sweep runs
with --push-metrics)</span></h2>
<table id="fleet-throughput"><thead><tr>
  <th>namespace</th><th>run</th><th>cell</th><th>engine</th>
  <th class="num">samples</th><th class="num">last ops/sec</th>
  <th class="num">min</th><th class="num">max</th>
</tr></thead><tbody></tbody></table>
<h2>Geomean-speedup drift <span class="sub">(per protocol, newest run
vs earliest; simulated results are deterministic, so drift means the
code changed the physics)</span></h2>
<table id="drift"><thead><tr>
  <th>protocol</th><th class="num">first</th><th class="num">latest</th>
  <th class="num">change</th><th>gate</th>
</tr></thead><tbody></tbody></table>
<h2>Live events</h2>
<div id="events"></div>
<div id="tip"></div>
</div>
<script>
"use strict";
const fmt = (x, d=0) => x == null ? "—"
  : Number(x).toLocaleString("en-US", {maximumFractionDigits: d});
const pct = x => x == null ? "—" : (100 * x).toFixed(0) + "%";
const css = name =>
  getComputedStyle(document.querySelector(".viz-root"))
    .getPropertyValue(name).trim();

function tile(k, v) {
  return `<div class="tile"><div class="v">${v}</div>` +
         `<div class="k">${k}</div></div>`;
}

function gateCell(flagged) {
  return flagged ? '<span class="flag">&#9888; FLAGGED</span>'
                 : '<span class="ok">&#10003; ok</span>';
}

function drawPerf(reg) {
  const svg = document.getElementById("perf");
  const bench = reg.bench || {};
  const pts = [];
  (bench.history || []).forEach((h, i) => {
    if (h.ops_per_second)
      pts.push({x: i, y: h.ops_per_second,
                label: h.recorded || h.commit || ("#" + i),
                note: h.note || ""});
  });
  (reg.runs || []).forEach(r => {
    if (r.engine_ops_per_second)
      pts.push({x: pts.length, y: r.engine_ops_per_second,
                label: r.dir.split("/").pop(), note: "run", run: true});
  });
  if (!pts.length) { svg.outerHTML = "<p class='sub'>no perf history yet " +
    "(run tools/check_perf.py --record)</p>"; return; }
  const W = 760, H = 240, L = 70, R = 12, T = 14, B = 34;
  const ys = pts.map(p => p.y).concat(
    bench.baseline ? [bench.baseline, reg.floor] : []);
  const ymax = Math.max(...ys) * 1.08, ymin = 0;
  const X = i => L + (W - L - R) * (pts.length < 2 ? 0.5
    : i / (pts.length - 1));
  const Y = v => T + (H - T - B) * (1 - (v - ymin) / (ymax - ymin));
  let s = "";
  for (let g = 0; g <= 4; g++) {
    const v = ymin + (ymax - ymin) * g / 4, y = Y(v);
    s += `<line x1="${L}" x2="${W - R}" y1="${y}" y2="${y}"
      stroke="${css("--grid")}" stroke-width="1"/>`;
    s += `<text x="${L - 6}" y="${y + 4}" text-anchor="end">` +
         `${fmt(v / 1000)}k</text>`;
  }
  if (bench.baseline) {
    const y = Y(bench.baseline);
    s += `<line x1="${L}" x2="${W - R}" y1="${y}" y2="${y}"
      stroke="${css("--text-secondary")}" stroke-width="1"
      stroke-dasharray="5 4"/>`;
    s += `<text x="${W - R}" y="${y - 5}" text-anchor="end">baseline ` +
         `${fmt(bench.baseline / 1000)}k (gate floor ` +
         `${fmt(reg.floor / 1000)}k)</text>`;
  }
  const line = pts.map((p, i) =>
    `${i ? "L" : "M"}${X(p.x).toFixed(1)},${Y(p.y).toFixed(1)}`).join("");
  s += `<path d="${line}" fill="none" stroke="${css("--series-1")}"
    stroke-width="2" stroke-linejoin="round"/>`;
  pts.forEach(p => {
    s += `<circle cx="${X(p.x)}" cy="${Y(p.y)}" r="4"
      fill="${css("--series-1")}" stroke="${css("--surface-1")}"
      stroke-width="2" data-tip="${p.label}: ${fmt(p.y)} ops/sec ` +
      `${p.note}"/>`;
    s += `<text x="${X(p.x)}" y="${H - B + 16}" text-anchor="middle">` +
         `${p.label}</text>`;
  });
  svg.innerHTML = s;
  const tip = document.getElementById("tip");
  svg.addEventListener("mousemove", ev => {
    const target = ev.target.closest("[data-tip]");
    if (!target) { tip.style.display = "none"; return; }
    tip.textContent = target.dataset.tip;
    tip.style.display = "block";
    tip.style.left = (ev.clientX + 12) + "px";
    tip.style.top = (ev.clientY - 10) + "px";
  });
  svg.addEventListener("mouseleave",
    () => tip.style.display = "none");
}

// Registry-derived strings (worker names especially are self-reported
// by remote hosts over the wire) must never reach innerHTML raw.
const esc = s => String(s).replace(/[&<>"']/g, c => ({
  "&": "&amp;", "<": "&lt;", ">": "&gt;",
  '"': "&quot;", "'": "&#39;"}[c]));

async function refresh() {
  const [runs, reg, store, fleet, pushed] = await Promise.all([
    fetch("/runs").then(r => r.json()),
    fetch("/regressions").then(r => r.json()),
    fetch("/store/scan").then(r => r.json()),
    fetch("/fleet").then(r => r.json()),
    fetch("/metrics/query?metric=cell.ops_per_second")
      .then(r => r.json()),
  ]);
  const bench = reg.bench || {};
  document.getElementById("tiles").innerHTML =
    tile("latest ops/sec", fmt(bench.latest)) +
    tile("committed baseline", fmt(bench.baseline)) +
    tile("runs discovered", fmt(runs.runs.length)) +
    tile("store records", fmt(store.records)) +
    tile("regressions flagged",
         `${reg.flagged.length ? "&#9888; " : ""}${reg.flagged.length}`);
  const byDir = {};
  reg.runs.forEach(r => byDir[r.dir] = r);
  document.querySelector("#runs tbody").innerHTML =
    runs.runs.map(r => {
      const p = byDir[r.dir] || {};
      return `<tr><td>${esc(r.dir)}</td><td>${r.status || (r.complete
        ? "completed" : "in flight")}</td>` +
        `<td class="num">${fmt(r.cells)}</td>` +
        `<td class="num">${fmt(r.failed_cells)}</td>` +
        `<td class="num">${fmt(r.engine_ops_per_second)}</td>` +
        `<td class="num">${pct(p.vs_baseline)}</td>` +
        `<td>${gateCell(p.flagged)}</td></tr>`;
    }).join("") || "<tr><td colspan=7>no runs registered yet — " +
      "sweep with --telemetry DIR</td></tr>";
  document.querySelector("#fleet tbody").innerHTML =
    (fleet.fleets || []).flatMap(f => {
      const coord = f.coordinator ? f.coordinator.addr : "—";
      const leases = f.leases || {};
      const rows = (f.workers && f.workers.length ? f.workers
        : [{name: "(no workers yet)", state: f.status}]);
      return rows.map(w =>
        `<tr><td>${esc(f.dir)}</td><td>${esc(coord)}</td>` +
        `<td>${esc(w.name)}</td>` +
        `<td>${esc(w.state || "—")}</td>` +
        `<td class="num">${fmt(w.cells_done)}</td>` +
        `<td class="num">${w.silence_s == null ? "—" : w.silence_s}</td>` +
        `<td class="num">${fmt(leases.outstanding)}</td>` +
        `<td class="num">${fmt(leases.reclaimed)}</td></tr>`);
    }).join("") || "<tr><td colspan=8>no distributed fleets " +
      "registered — sweep with --listen HOST:PORT</td></tr>";
  document.querySelector("#lease-health tbody").innerHTML =
    (fleet.fleets || []).filter(f => f.stats).map(f => {
      const s = f.stats;
      return `<tr><td>${esc(f.dir)}</td>` +
        `<td class="num">${fmt(s.leases_issued)}</td>` +
        `<td class="num">${fmt(s.reclaims)}</td>` +
        `<td class="num">${fmt(s.reclaims_eof)}</td>` +
        `<td class="num">${fmt(s.reclaims_heartbeat)}</td>` +
        `<td class="num">${fmt(s.reclaims_deadline)}</td>` +
        `<td class="num">${fmt(s.retries)}</td>` +
        `<td class="num">${fmt(s.stale_frames)}</td>` +
        `<td class="num">${fmt(s.auth_rejected)}</td>` +
        `<td class="num">${fmt(s.worker_byes)}</td></tr>`;
    }).join("") || "<tr><td colspan=10>no coordinator stats yet</td></tr>";
  document.querySelector("#fleet-throughput tbody").innerHTML =
    (pushed.series || []).map(s => {
      const l = s.labels || {};
      const cell = [l.workload, l.protocol, l.placement]
        .filter(Boolean).join(" / ");
      return `<tr><td>${esc(s.namespace)}</td><td>${esc(s.run)}</td>` +
        `<td>${esc(cell || "—")}</td><td>${esc(l.engine || "—")}</td>` +
        `<td class="num">${fmt(s.count)}</td>` +
        `<td class="num">${fmt(s.last)}</td>` +
        `<td class="num">${fmt(s.min)}</td>` +
        `<td class="num">${fmt(s.max)}</td></tr>`;
    }).join("") || "<tr><td colspan=8>no pushed metrics yet — sweep " +
      "with --push-metrics URL</td></tr>";
  document.querySelector("#drift tbody").innerHTML =
    Object.entries(reg.speedup_drift || {}).map(([proto, d]) =>
      `<tr><td>${proto}</td><td class="num">${d.first.toFixed(3)}</td>` +
      `<td class="num">${d.last.toFixed(3)}</td>` +
      `<td class="num">${pct(d.change)}</td>` +
      `<td>${gateCell(d.flagged)}</td></tr>`
    ).join("") || "<tr><td colspan=5>no speedup data yet</td></tr>";
  drawPerf(reg);
}

function follow() {
  const log = document.getElementById("events");
  const source = new EventSource("/events");
  for (const kind of ["snapshot", "run", "cell", "sidecar", "metrics",
                      "end"]) {
    source.addEventListener(kind, ev => {
      const line = document.createElement("div");
      line.textContent = `${new Date().toLocaleTimeString()} ` +
        `${kind} ${ev.data}`;
      log.prepend(line);
      while (log.childElementCount > 50) log.lastChild.remove();
      if (kind === "cell" || kind === "sidecar"
          || kind === "metrics") refresh();
    });
  }
}

refresh().then(follow).catch(err => {
  document.getElementById("events").textContent = "error: " + err;
});
setInterval(refresh, 10000);
</script>
</body>
</html>
"""


if __name__ == "__main__":
    raise SystemExit(main())
