"""Cross-run aggregation: manifests + perf sidecars -> regression view.

The sweep CLI leaves one deterministic ``<slug>.metrics.json`` manifest
and one wall-clock ``<slug>.perf.json`` sidecar per cell, plus a
``run.json`` index, under every ``--telemetry`` directory.  This module
reads those artifacts *back* — tolerantly, run directories may be
mid-write — and aggregates them across runs into the view the
observability service (:mod:`repro.telemetry.serve`) renders:

* per-run summaries (cells, workloads, protocols, failures),
* engine throughput per run (``sum ops / sum wall_seconds`` over the
  cells that actually simulated — store replays carry
  ``wall_seconds == 0`` and are excluded),
* per-protocol geomean speedups vs the ``noremote`` baseline, grouped
  exactly the way the paper's fig 8 normalizes (same workload, config
  fingerprint, placement, and fault plan),
* drift of both across runs against the committed ``BENCH_perf.json``
  baseline and its ``--record`` history — the ``check_perf`` gate
  rendered over time.

Everything here is pure functions over JSON so the HTTP service and
the offline ``store``/CLI tools share one code path.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.metrics import geomean

#: Fractional drop that flags a regression; mirrors the default
#: ``tools/check_perf.py --tolerance``.
DEFAULT_TOLERANCE = 0.30


def _read_json(path: Path):
    """Parse one JSON file; ``None`` on absence or mid-write garbage."""
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None


# ----------------------------------------------------------------------
# Run directories
# ----------------------------------------------------------------------


def load_run(run_dir) -> dict:
    """Load one telemetry run directory into a plain dict.

    Works on a sweep ``--telemetry`` directory (``run.json`` +
    ``<slug>.metrics.json`` manifests) and on an ``observe`` out dir
    (bare ``metrics.json``); returns ``None`` when the directory holds
    neither.  Cells whose manifest or sidecar is missing or torn are
    skipped — an in-flight sweep is a legitimate input.
    """
    root = Path(run_dir)
    if not root.is_dir():
        return None
    index = _read_json(root / "run.json")
    manifest_paths = sorted(root.glob("*.metrics.json"))
    single = root / "metrics.json"
    if not manifest_paths and single.exists():
        manifest_paths = [single]
    if index is None and not manifest_paths:
        return None

    cells = []
    for path in manifest_paths:
        manifest = _read_json(path)
        if not isinstance(manifest, dict) or "cell" not in manifest:
            continue
        slug = path.name[:-len(".metrics.json")] \
            if path.name != "metrics.json" else path.stem
        perf = _read_json(path.with_name(
            path.name.replace("metrics.json", "perf.json"))) or {}
        cell = manifest["cell"]
        plan = cell.get("fault_plan") or {}
        cells.append({
            "slug": slug,
            "workload": cell.get("workload"),
            "protocol": cell.get("protocol"),
            "placement": cell.get("placement"),
            "config_fingerprint": cell.get("config_fingerprint"),
            "fault_plan": plan.get("name"),
            "plan_fingerprint": plan.get("fingerprint", ""),
            "cycles": manifest.get("time", {}).get("cycles"),
            "bottleneck": manifest.get("time", {})
                                  .get("bottleneck", {}).get("resource"),
            "ops": manifest.get("work", {}).get("ops"),
            "wall_seconds": perf.get("wall_seconds"),
            "ops_per_second": perf.get("ops_per_second"),
            "has_intervals": (root / "intervals.jsonl").exists()
            and path.name == "metrics.json",
        })

    failed = _read_json(root / "failed_cells.json") or []
    fabric = _read_json(root / "fabric.json")
    run = {
        "dir": str(root),
        "experiments": (index or {}).get("experiments", []),
        "settings": (index or {}).get("settings", {}),
        "indexed_cells": (index or {}).get("cells", []),
        "complete": index is not None,
        "cells": cells,
        "failed_cells": failed,
        "fabric": fabric,
        "engine_ops_per_second": engine_ops_per_second(cells),
        "geomean_speedups": geomean_speedups(cells),
    }
    return run


def engine_ops_per_second(cells) -> float:
    """Run-level engine throughput from the perf sidecars.

    ``sum(ops) / sum(wall_seconds)`` over cells that spent engine time;
    store replays (``wall_seconds == 0``) and torn sidecars contribute
    nothing.  ``None`` when no cell simulated.
    """
    ops = 0
    wall = 0.0
    for cell in cells:
        if cell.get("wall_seconds") and cell.get("ops"):
            ops += cell["ops"]
            wall += cell["wall_seconds"]
    return ops / wall if wall > 0 else None


def geomean_speedups(cells) -> dict:
    """Per-protocol geomean speedup vs ``noremote``, fig 8 style.

    Cells group by (workload, config fingerprint, placement, fault
    plan); within a group every protocol normalizes to the group's
    ``noremote`` cycles.  Groups without a baseline, and zero-cycle
    cells, are skipped.
    """
    groups: dict = {}
    for cell in cells:
        if not cell.get("cycles"):
            continue
        key = (cell.get("workload"), cell.get("config_fingerprint"),
               cell.get("placement"), cell.get("plan_fingerprint"))
        groups.setdefault(key, {})[cell.get("protocol")] = cell["cycles"]
    speedups: dict = {}
    for group in groups.values():
        base = group.get("noremote")
        if not base:
            continue
        for protocol, cycles in group.items():
            if protocol == "noremote" or not cycles:
                continue
            speedups.setdefault(protocol, []).append(base / cycles)
    return {protocol: geomean(values)
            for protocol, values in sorted(speedups.items())}


def run_summary(run: dict) -> dict:
    """Compact per-run record for the ``/runs`` endpoint."""
    cells = run["cells"]
    return {
        "dir": run["dir"],
        "experiments": run["experiments"],
        "complete": run["complete"],
        "cells": len(cells),
        "failed_cells": len(run["failed_cells"]),
        "workloads": sorted({c["workload"] for c in cells
                             if c["workload"]}),
        "protocols": sorted({c["protocol"] for c in cells
                             if c["protocol"]}),
        "engine_ops_per_second": run["engine_ops_per_second"],
        "geomean_speedups": run["geomean_speedups"],
        "fabric": run["fabric"],
    }


# ----------------------------------------------------------------------
# Bench baseline + regression view
# ----------------------------------------------------------------------


def load_bench(path) -> dict:
    """``BENCH_perf.json`` reduced to what the dashboard plots."""
    bench = _read_json(path) if path else None
    if not isinstance(bench, dict):
        return None
    return {
        "path": str(path),
        "baseline": bench.get("baseline", {}).get("ops_per_second"),
        "latest": bench.get("latest", {}).get("ops_per_second"),
        "history": bench.get("history", []),
    }


def regression_view(runs, bench: dict,
                    tolerance: float = DEFAULT_TOLERANCE) -> dict:
    """The cross-run drift view: check_perf's gate, rendered over time.

    ``runs`` is a list of :func:`load_run` dicts in discovery order.
    Flags two independent regressions:

    * **perf**: a run whose engine ops/sec sits more than ``tolerance``
      below the committed bench baseline (exactly the CI gate), and
    * **speedup drift**: a protocol whose geomean speedup in the newest
      run moved more than ``tolerance`` relative to the earliest run
      that measured it — simulated results are deterministic, so drift
      across runs means the *code* changed the physics.
    """
    baseline = (bench or {}).get("baseline")
    floor = baseline * (1.0 - tolerance) if baseline else None
    perf_rows = []
    for run in runs:
        ops = run["engine_ops_per_second"]
        flagged = bool(floor and ops is not None and ops < floor)
        perf_rows.append({
            "dir": run["dir"],
            "engine_ops_per_second": ops,
            "vs_baseline": (ops / baseline) if ops and baseline else None,
            "flagged": flagged,
        })

    drift: dict = {}
    for run in runs:
        for protocol, value in run["geomean_speedups"].items():
            entry = drift.setdefault(protocol, {
                "first": value, "first_dir": run["dir"],
                "last": value, "last_dir": run["dir"],
            })
            entry["last"] = value
            entry["last_dir"] = run["dir"]
    for entry in drift.values():
        change = entry["last"] / entry["first"] - 1.0 \
            if entry["first"] else None
        entry["change"] = change
        entry["flagged"] = bool(change is not None
                                and abs(change) > tolerance)

    return {
        "bench": bench,
        "tolerance": tolerance,
        "floor": floor,
        "runs": perf_rows,
        "speedup_drift": dict(sorted(drift.items())),
        "flagged": sorted(
            [row["dir"] for row in perf_rows if row["flagged"]]
            + [p for p, e in drift.items() if e["flagged"]]
        ),
    }


# ----------------------------------------------------------------------
# Result digests (store query API)
# ----------------------------------------------------------------------


def result_digest(result) -> dict:
    """JSON-able summary of one stored :class:`SimResult`.

    The store pickles full results; queries answer with this digest so
    the HTTP API and the ``store get`` CLI never ship pickles.
    """
    name, index, cycles = result.resources.bottleneck()
    return {
        "workload": result.workload_name,
        "protocol": result.protocol_name,
        "platform": {
            "num_gpus": result.cfg.num_gpus,
            "gpms_per_gpu": result.cfg.gpms_per_gpu,
        },
        "cycles": result.cycles,
        "seconds": result.seconds,
        "bottleneck": {"resource": name, "index": index,
                       "cycles": cycles},
        "ops": result.ops,
        "l1_hit_rate": result.l1_stats.hit_rate,
        "l2_hit_rate": result.l2_stats.hit_rate,
        "dram_bytes": result.dram_bytes,
        "inter_gpu_bytes": result.inter_gpu_bytes,
        "inv_messages": result.stats.inv_messages,
        "inv_bytes": result.stats.inv_bytes,
        "degradation": (result.degradation.as_dict()
                        if result.degradation is not None else None),
    }
