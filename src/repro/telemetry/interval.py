"""Interval metrics: counters binned into fixed windows.

The sampler turns a run's cumulative counters into a deterministic
time series: the driving engine attaches a *snapshot function* (a
zero-argument callable returning ``(counters, gauges)`` dicts) and
ticks the sampler with its clock — simulated cycles in the detailed
engine, processed-op count in the throughput engine.  Each time the
clock crosses a bin boundary the sampler closes the open bin with the
delta of every counter since the previous snapshot; gauges (e.g.
directory occupancy) are recorded at their closing value.

Counters may be scalars, flat lists of scalars (per-GPU / per-GPM
series), or one level of string-keyed dict (message-type tallies);
deltas are computed element-wise with missing previous keys treated as
zero.  Rows serialize as JSON Lines with sorted keys, so two runs of
the same seeded cell produce byte-identical files — the property the
determinism tests pin.
"""

from __future__ import annotations

import json


def _delta(current, previous):
    """Element-wise ``current - previous`` over the snapshot shapes."""
    if isinstance(current, dict):
        prev = previous or {}
        return {k: _delta(v, prev.get(k)) for k, v in current.items()}
    if isinstance(current, list):
        prev = previous or []
        return [
            _delta(v, prev[i] if i < len(prev) else None)
            for i, v in enumerate(current)
        ]
    return current - (previous or 0)


class IntervalSampler:
    """Bins cumulative counters into fixed-width windows.

    ``width`` is in the driving engine's clock unit (``time_unit``:
    ``"cycles"`` for the detailed engine, ``"ops"`` for the throughput
    engine's analytic per-phase series).
    """

    def __init__(self, width: float, time_unit: str = "cycles"):
        if width <= 0:
            raise ValueError("interval width must be positive")
        self.width = float(width)
        self.time_unit = time_unit
        #: Closed bins, in order; each is a JSON-serializable dict.
        self.rows: list = []
        self._snapshot = None
        self._prev = None
        self._bin_start = 0.0
        self._finished = False

    # ------------------------------------------------------------------

    def attach(self, snapshot_fn) -> None:
        """Set the counter source and take the t=0 baseline."""
        self._snapshot = snapshot_fn
        counters, _gauges = snapshot_fn()
        self._prev = counters

    def _close_bin(self, t1: float) -> None:
        counters, gauges = self._snapshot()
        row = {
            "index": len(self.rows),
            "t0": self._bin_start,
            "t1": t1,
            "unit": self.time_unit,
            "counters": _delta(counters, self._prev),
            "gauges": gauges,
        }
        self.rows.append(row)
        self._prev = counters
        self._bin_start = t1

    def tick(self, now: float) -> None:
        """Advance the sampler clock, closing any bins it crossed.

        When the clock jumps several bins at once (an idle stretch of
        simulated time), the accumulated delta lands in the first
        crossed bin and the fully-skipped bins record zero activity.
        """
        if self._snapshot is None:
            return
        while now >= self._bin_start + self.width:
            self._close_bin(self._bin_start + self.width)

    def finish(self, end: float) -> None:
        """Close the final (possibly partial) bin at ``end``."""
        if self._snapshot is None or self._finished:
            return
        self._finished = True
        self.tick(end)
        if end > self._bin_start:
            self._close_bin(end)

    # ------------------------------------------------------------------

    def write_jsonl(self, path) -> None:
        """Serialize every row as one sorted-key JSON line."""
        with open(path, "w") as fh:
            for row in self.rows:
                fh.write(json.dumps(row, sort_keys=True) + "\n")


def read_jsonl(path) -> list:
    """Load an interval series written by :meth:`write_jsonl`."""
    rows = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows
