"""Push-based metrics: typed records and the sweep-side client.

Sweeps, workers and coordinators *push* telemetry to a collector (the
``observe --serve`` service's ``/ingest`` endpoint) instead of leaving
it on disk for the service to poll — the observability analogue of the
paper's hierarchy argument: state is forwarded up the hierarchy, not
rediscovered.  Two disciplines govern everything here:

* **Typed records, not ad-hoc JSON.**  Every record is validated
  against an explicit schema (:func:`validate_record`) with stated
  invariants — a finite numeric value, flat string-keyed labels, a
  known kind — on *both* sides of the wire.  Records that fail are
  rejected and counted, never guessed at (the guarded-action modeling
  discipline of arXiv 1803.10323, applied to telemetry).
* **Strictly out-of-band.**  Metrics must never perturb a sweep:
  :meth:`MetricsClient.emit` is non-blocking with a bounded buffer, a
  dead or slow collector costs at most a short bounded retry in the
  background flusher, and every record that cannot be delivered is
  *dropped and counted* — ``emitted == sent + dropped + buffered`` at
  all times.  Manifests, journals and the results store are written by
  code paths this module never touches, so sweep output is
  byte-identical with metrics on or off.

Authentication reuses the HMAC discipline of the fabric wire
(:mod:`repro.experiments.fabric_net`): the client presents a bearer
token, the collector resolves it against its configured token table in
constant time (:class:`TokenTable`), and the record's *namespace* is
derived from the token server-side — a client cannot claim another
user's namespace.
"""

from __future__ import annotations

import hmac
import json
import math
import os
import socket
import threading
import time
import urllib.error
import urllib.request
import zlib

from repro.experiments.fabric import _mix

#: Record/batch schema version; bump on any incompatible change.
METRICS_SCHEMA = 1

#: Record kinds the schema admits.
RECORD_KINDS = ("counter", "gauge", "window")

#: Hard cap on labels per record (an unbounded label set would let one
#: misbehaving client explode the collector's series cardinality).
MAX_LABELS = 12

#: Hard cap on counters carried by one window record.
MAX_WINDOW_COUNTERS = 64


def _finite_number(value) -> bool:
    return (isinstance(value, (int, float))
            and not isinstance(value, bool)
            and math.isfinite(value))


def validate_record(record) -> str:
    """Check one record against the schema; returns an error string or
    ``None``.  The invariants are explicit and total — anything not
    positively admitted is rejected:

    * ``metric``: non-empty ``str`` of dotted identifiers,
    * ``kind``: one of :data:`RECORD_KINDS` (default ``gauge``),
    * point records (counter/gauge): finite numeric ``value``,
    * window records: finite ``t0 <= t1``, a ``unit`` string, and a
      flat ``counters`` dict of finite numbers,
    * ``labels``: flat ``str -> str|int|float`` dict, at most
      :data:`MAX_LABELS` entries,
    * ``t``: optional finite timestamp.
    """
    if not isinstance(record, dict):
        return "record is not an object"
    metric = record.get("metric")
    if not isinstance(metric, str) or not metric \
            or not all(part for part in metric.split(".")):
        return f"bad metric name {metric!r}"
    kind = record.get("kind", "gauge")
    if kind not in RECORD_KINDS:
        return f"unknown kind {kind!r}"
    labels = record.get("labels", {})
    if not isinstance(labels, dict) or len(labels) > MAX_LABELS:
        return "labels must be a dict of <= %d entries" % MAX_LABELS
    for key, value in labels.items():
        if not isinstance(key, str):
            return f"non-string label key {key!r}"
        if not isinstance(value, str) and not _finite_number(value):
            return f"bad label value for {key!r}"
    t = record.get("t")
    if t is not None and not _finite_number(t):
        return f"bad timestamp {t!r}"
    if kind == "window":
        t0, t1 = record.get("t0"), record.get("t1")
        if not _finite_number(t0) or not _finite_number(t1) or t0 > t1:
            return f"bad window bounds ({t0!r}, {t1!r})"
        if not isinstance(record.get("unit"), str):
            return "window record missing unit"
        counters = record.get("counters")
        if not isinstance(counters, dict) or not counters \
                or len(counters) > MAX_WINDOW_COUNTERS:
            return "window counters must be a non-empty dict of " \
                   "<= %d entries" % MAX_WINDOW_COUNTERS
        for key, value in counters.items():
            if not isinstance(key, str) or not _finite_number(value):
                return f"bad window counter {key!r}"
        return None
    if not _finite_number(record.get("value")):
        return f"bad value {record.get('value')!r}"
    return None


def expand_record(record) -> list:
    """Window records fan out into one point per counter
    (``<metric>.<counter>`` at the window's closing edge, with the
    window span recorded as ``<metric>.span``); point records pass
    through.  Rollups therefore only ever see points."""
    if record.get("kind", "gauge") != "window":
        return [record]
    labels = record.get("labels", {})
    t = record.get("t")
    points = [{
        "metric": f"{record['metric']}.span",
        "kind": "gauge",
        "value": record["t1"] - record["t0"],
        "labels": labels, "t": t,
    }]
    for name, value in sorted(record["counters"].items()):
        points.append({
            "metric": f"{record['metric']}.{name}",
            "kind": "counter",
            "value": value,
            "labels": labels, "t": t,
        })
    return points


# ----------------------------------------------------------------------
# Token table (collector side)
# ----------------------------------------------------------------------


def derive_namespace(token: str) -> str:
    """Deterministic namespace for a bare token: an HMAC-SHA256 of the
    token under a fixed context string, truncated.  Knowing a token
    grants exactly its own namespace — nothing about any other token's
    namespace leaks from the derivation."""
    digest = hmac.new(token.encode(), b"repro-metrics-namespace",
                      "sha256").hexdigest()
    return f"ns-{digest[:12]}"


class TokenTable:
    """Bearer-token -> namespace resolution for mutating endpoints.

    Specs are ``NAMESPACE=SECRET`` (explicit, human-readable namespace)
    or a bare ``SECRET`` (namespace derived via
    :func:`derive_namespace`).  Resolution compares the presented token
    against *every* configured secret with :func:`hmac.compare_digest`
    — constant time per entry, no early exit on the matching one's
    position.
    """

    def __init__(self, specs=()):
        self._entries = []  # (secret, namespace)
        for spec in specs or ():
            if not spec:
                continue
            namespace, sep, secret = str(spec).partition("=")
            if sep and namespace:
                self._entries.append((secret, namespace))
            else:
                self._entries.append((str(spec),
                                      derive_namespace(str(spec))))

    @property
    def required(self) -> bool:
        """True when any token is configured: mutating endpoints then
        reject requests that do not present a matching one."""
        return bool(self._entries)

    def resolve(self, presented) -> str:
        """The namespace for a presented token, or ``None``.  Every
        configured secret is compared (constant-time), even after a
        match."""
        if not isinstance(presented, str) or not presented:
            return None
        found = None
        for secret, namespace in self._entries:
            if hmac.compare_digest(presented.encode(), secret.encode()):
                found = namespace
        return found


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------


class MetricsClient:
    """Batches typed records and POSTs them to a collector.

    Out-of-band by construction: :meth:`emit` appends to a bounded
    in-memory buffer and returns immediately (a full buffer drops the
    record and counts it); a daemon flusher thread drains the buffer in
    batches with a seeded, bounded backoff between attempts; a batch
    that exhausts its attempts — collector down, auth refused, garbage
    response — is dropped and counted, never retried forever.
    :meth:`close` performs one final bounded flush and accounts every
    still-undelivered record as dropped, so
    ``emitted == sent + dropped`` holds at exit.

    Nothing in this class raises into the caller once constructed, and
    no sweep artifact (manifest, journal, store) is ever written
    through it.
    """

    def __init__(self, url: str, *, token: str = None, run: str = "adhoc",
                 namespace: str = None, source: str = None, seed: int = 1,
                 buffer_max: int = 4096, batch_max: int = 256,
                 flush_interval: float = 0.25, max_attempts: int = 3,
                 retry_backoff: float = 0.2, timeout: float = 2.0,
                 autoflush: bool = True):
        self.url = url.rstrip("/")
        self.token = token or None
        self.run = str(run)
        #: Only honored by a collector with no token table; with auth
        #: on, the namespace is derived server-side from the token.
        self.namespace = namespace
        self.source = source or f"{socket.gethostname()}:{os.getpid()}"
        self.seed = seed
        self.buffer_max = max(1, int(buffer_max))
        self.batch_max = max(1, int(batch_max))
        self.flush_interval = flush_interval
        self.max_attempts = max(1, int(max_attempts))
        self.retry_backoff = retry_backoff
        self.timeout = timeout
        self._autoflush = autoflush
        self._buffer: list = []
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread = None
        self._batch_seq = 0
        # Accounting: emitted == sent + dropped + len(_buffer), always.
        self.emitted = 0
        self.sent = 0
        self.dropped = 0
        self.batches = 0
        self.post_errors = 0
        self.auth_rejected = 0
        self.rejected_by_collector = 0

    # -- emitting ------------------------------------------------------

    def emit(self, metric: str, value, labels: dict = None,
             kind: str = "gauge", t: float = None) -> bool:
        """Queue one point record; never blocks, never raises.
        Returns False when the record was refused (invalid, buffer
        full, or the client is closed) — refusals count as drops."""
        record = {"metric": metric, "kind": kind, "value": value,
                  "labels": dict(labels or {}),
                  "t": time.time() if t is None else t}
        return self._enqueue(record)

    def emit_window(self, metric: str, t0: float, t1: float, unit: str,
                    counters: dict, labels: dict = None,
                    t: float = None) -> bool:
        """Queue one window record (an interval sampler bin, a whole
        cell's span) — fans out into per-counter points on ingest."""
        record = {"metric": metric, "kind": "window",
                  "t0": float(t0), "t1": float(t1), "unit": unit,
                  "counters": dict(counters),
                  "labels": dict(labels or {}),
                  "t": time.time() if t is None else t}
        return self._enqueue(record)

    def _enqueue(self, record) -> bool:
        self.emitted += 1
        if validate_record(record) is not None or self._stop.is_set():
            self.dropped += 1
            return False
        with self._lock:
            if len(self._buffer) >= self.buffer_max:
                self.dropped += 1
                return False
            self._buffer.append(record)
            depth = len(self._buffer)
        if self._autoflush:
            self._ensure_thread()
            if depth >= self.batch_max:
                self._wake.set()
        return True

    # -- flushing ------------------------------------------------------

    def _ensure_thread(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._flush_loop, daemon=True,
                name="repro-metrics-flush",
            )
            self._thread.start()

    def _flush_loop(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(self.flush_interval)
            self._wake.clear()
            self.flush()

    def _take_batch(self) -> list:
        with self._lock:
            batch = self._buffer[:self.batch_max]
            del self._buffer[:len(batch)]
        return batch

    def flush(self, attempts: int = None) -> None:
        """Drain the buffer, one bounded-retry batch at a time.  Safe
        from any thread; a batch that cannot be delivered is dropped
        and counted and the next batch still gets its own attempts."""
        while True:
            batch = self._take_batch()
            if not batch:
                return
            if self._post_with_retries(batch, attempts):
                self.sent += len(batch)
            else:
                self.dropped += len(batch)

    def _post_with_retries(self, batch, attempts=None) -> bool:
        from repro.experiments.fabric import retry_delay

        self._batch_seq += 1
        budget = attempts if attempts is not None else self.max_attempts
        fingerprint = f"{self.url}#{self._batch_seq}"
        for attempt in range(1, budget + 1):
            status = self._post(batch)
            if status == "sent":
                return True
            if status == "refused":
                return False  # auth/validation: retrying cannot help
            if attempt < budget:
                time.sleep(min(
                    retry_delay(self.seed, fingerprint, attempt,
                                self.retry_backoff),
                    2.0,
                ))
        return False

    def _post(self, batch) -> str:
        """One POST attempt: 'sent', 'refused' (don't retry), or
        'error' (transient; retry may help)."""
        payload = {
            "v": METRICS_SCHEMA,
            "run": self.run,
            "source": self.source,
            "records": batch,
        }
        if self.namespace is not None:
            payload["namespace"] = self.namespace
        body = json.dumps(payload, sort_keys=True).encode()
        request = urllib.request.Request(
            self.url + "/ingest", data=body,
            headers={"Content-Type": "application/json"}, method="POST",
        )
        if self.token:
            request.add_header("Authorization", f"Bearer {self.token}")
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as resp:
                reply = json.loads(resp.read() or b"{}")
                self.batches += 1
                self.rejected_by_collector += int(
                    reply.get("rejected", 0) or 0)
                return "sent"
        except urllib.error.HTTPError as exc:
            self.post_errors += 1
            if exc.code in (401, 403):
                self.auth_rejected += 1
                return "refused"
            if 400 <= exc.code < 500:
                return "refused"  # our payload; a retry sends the same
            return "error"
        except (urllib.error.URLError, OSError, ValueError,
                json.JSONDecodeError):
            self.post_errors += 1
            return "error"

    # -- lifecycle -----------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            buffered = len(self._buffer)
        return {
            "emitted": self.emitted,
            "sent": self.sent,
            "dropped": self.dropped,
            "buffered": buffered,
            "batches": self.batches,
            "post_errors": self.post_errors,
            "auth_rejected": self.auth_rejected,
            "rejected_by_collector": self.rejected_by_collector,
        }

    def close(self, timeout: float = 2.0) -> dict:
        """Final bounded flush; undeliverable records become drops.
        Returns the closing :meth:`stats` snapshot.  Idempotent."""
        if not self._stop.is_set():
            self._stop.set()
            self._wake.set()
            if self._thread is not None:
                self._thread.join(timeout=timeout)
            # One last single-attempt pass: a live collector gets the
            # tail; a dead one costs one timeout, not a retry ladder.
            self.flush(attempts=1)
            with self._lock:
                leftovers = len(self._buffer)
                self._buffer.clear()
            self.dropped += leftovers
        return self.stats()

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()

    def summary(self) -> str:
        """One stderr-friendly line for CLI exits."""
        s = self.stats()
        note = ""
        if s["auth_rejected"]:
            note = " (collector refused our token)"
        elif s["post_errors"] and not s["sent"]:
            note = " (collector unreachable)"
        return (f"metrics: {s['sent']} record(s) pushed to {self.url}, "
                f"{s['dropped']} dropped{note}")


# ----------------------------------------------------------------------
# Instrumentation helpers (shared by runner, worker, observe)
# ----------------------------------------------------------------------


def cell_labels(workload, protocol, *, engine=None, placement=None,
                source=None, **extra) -> dict:
    labels = {"workload": workload, "protocol": protocol}
    if engine:
        labels["engine"] = engine
    if placement:
        labels["placement"] = placement
    if source:
        labels["source"] = source
    labels.update({k: v for k, v in extra.items() if v is not None})
    return {k: str(v) for k, v in labels.items() if v is not None}


def emit_cell_metrics(client: MetricsClient, result, *, labels: dict,
                      prefix: str = "cell") -> None:
    """Push one completed cell: its whole span as a window record
    (``<prefix>.*`` per-counter rollups, ``engine_used`` provenance in
    the labels) plus host throughput when the cell actually simulated.
    A ``None`` client or result is a no-op."""
    if client is None or result is None:
        return
    if result.wall_seconds > 0:
        client.emit(f"{prefix}.ops_per_second", result.ops_per_second,
                    labels=labels)
        client.emit(f"{prefix}.wall_seconds", result.wall_seconds,
                    labels=labels, kind="counter")
    client.emit_window(prefix, 0.0, float(result.cycles), "cycles", {
        "ops": result.ops,
        "cycles": result.cycles,
        "dram_bytes": result.dram_bytes,
        "inter_gpu_bytes": result.inter_gpu_bytes,
        "l1_hits": result.l1_stats.hits,
        "l1_misses": result.l1_stats.misses,
        "l2_hits": result.l2_stats.hits,
        "l2_misses": result.l2_stats.misses,
    }, labels=labels)


def emit_stats_counters(client: MetricsClient, counters: dict, *,
                        prefix: str, labels: dict = None) -> None:
    """Push a stats dict (fabric/store counters) as gauges — the
    collector's rollups keep last/min/max, so republishing a running
    snapshot is idempotent-friendly."""
    if client is None or not counters:
        return
    for name, value in sorted(counters.items()):
        if _finite_number(value):
            client.emit(f"{prefix}.{name}", value, labels=labels)


def batch_fingerprint(url: str, seq: int) -> int:
    """Seed helper kept for tests: stable per (url, batch)."""
    return _mix(zlib.crc32(url.encode()), seq)
