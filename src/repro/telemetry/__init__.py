"""Telemetry subsystem: event tracing, interval metrics, run manifests.

Three layers, all off by default with a zero-overhead contract
(enforced by ``tools/check_perf.py``):

* :mod:`~repro.telemetry.tracer` — structured event tracing
  (:class:`Tracer` / :data:`NULL_TRACER` / :class:`ChromeTracer`),
  exported as Chrome trace-event JSON for Perfetto.
* :mod:`~repro.telemetry.interval` — :class:`IntervalSampler`, binning
  counters into fixed windows as deterministic JSONL time series.
* :mod:`~repro.telemetry.manifest` — per-cell ``metrics.json``
  manifests (deterministic) plus ``perf.json`` sidecars (wall clock),
  written by sweeps under ``--telemetry DIR``.

:class:`TelemetrySession` bundles the collectors for one run;
``python -m repro.experiments observe`` records a single cell with all
of them and renders a markdown report.
"""

from repro.telemetry.interval import IntervalSampler, read_jsonl
from repro.telemetry.manifest import (
    cell_manifest,
    cell_slug,
    perf_sidecar,
    write_cell_artifacts,
    write_json,
    write_run_manifest,
)
from repro.telemetry.progress import SweepProgress
from repro.telemetry.tracer import (
    NULL_TRACER,
    ChromeTracer,
    NullTracer,
    Tracer,
)

_SESSION_EXPORTS = (
    "TallyingSink",
    "TelemetrySession",
    "make_detailed_snapshot",
    "make_throughput_snapshot",
)


def __getattr__(name):
    # ``session`` pulls in the engines, which import
    # ``repro.core.protocol``, which imports this package for
    # NULL_TRACER — so the session layer loads lazily to keep the
    # import graph acyclic.
    if name in _SESSION_EXPORTS:
        from repro.telemetry import session

        return getattr(session, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ChromeTracer",
    "IntervalSampler",
    "NULL_TRACER",
    "NullTracer",
    "SweepProgress",
    "TallyingSink",
    "TelemetrySession",
    "Tracer",
    "cell_manifest",
    "cell_slug",
    "make_detailed_snapshot",
    "make_throughput_snapshot",
    "perf_sidecar",
    "read_jsonl",
    "write_cell_artifacts",
    "write_json",
    "write_run_manifest",
]
