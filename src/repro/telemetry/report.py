"""Markdown report rendered from one cell's telemetry artifacts.

The ``observe`` CLI records a single cell with full tracing and then
builds this report *from the written artifacts* (the Chrome trace JSON
and the interval JSONL are re-loaded, proving they round-trip), so the
report doubles as an end-to-end check of the artifact formats.
"""

from __future__ import annotations

#: Eight-level block ramp for text sparklines.
_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values) -> str:
    """Unicode sparkline of a numeric series (empty-safe)."""
    values = list(values)
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _SPARK[0] * len(values)
    return "".join(
        _SPARK[min(int((v - lo) / span * len(_SPARK)), len(_SPARK) - 1)]
        for v in values
    )


def _bar(value: float, peak: float, width: int = 24) -> str:
    if peak <= 0:
        return ""
    return "█" * max(1, int(round(value / peak * width)))


def _msg_events(trace_doc: dict):
    for event in trace_doc.get("traceEvents", ()):
        if event.get("cat") == "msg":
            yield event


def _gpu_of(label: str) -> str:
    """``gpu0.gpm3`` -> ``gpu0``."""
    return label.split(".")[0]


def top_link_hogs(trace_doc: dict, top: int = 8) -> list:
    """[(src_gpu, dst_gpu, bytes)] for inter-GPU traffic, descending."""
    pairs: dict = {}
    for event in _msg_events(trace_doc):
        args = event.get("args", {})
        src, dst = _gpu_of(args.get("src", "?")), _gpu_of(args.get("dst", "?"))
        if src != dst:
            key = (src, dst)
            pairs[key] = pairs.get(key, 0) + args.get("bytes", 0)
    ranked = sorted(pairs.items(), key=lambda kv: (-kv[1], kv[0]))
    return [(src, dst, nbytes) for (src, dst), nbytes in ranked[:top]]


def fanout_histogram(trace_doc: dict) -> dict:
    """sharer count -> occurrences, from the recorded fan-out events."""
    hist: dict = {}
    for event in trace_doc.get("traceEvents", ()):
        if event.get("cat") == "fanout":
            sharers = event.get("args", {}).get("sharers", 0)
            hist[sharers] = hist.get(sharers, 0) + 1
    return hist


def hit_rate_series(rows) -> tuple:
    """(l1_rates, l2_rates) per interval bin; bins without accesses
    repeat the previous value so the curve stays plottable."""
    l1, l2 = [], []
    for row in rows:
        c = row.get("counters", {})
        for rates, hits_key, miss_key in ((l1, "l1_hits", "l1_misses"),
                                          (l2, "l2_hits", "l2_misses")):
            hits = c.get(hits_key, 0)
            accesses = hits + c.get(miss_key, 0)
            if accesses > 0:
                rates.append(hits / accesses)
            else:
                rates.append(rates[-1] if rates else 0.0)
    return l1, l2


def render_report(manifest: dict, intervals: list,
                  trace_doc: dict) -> str:
    """The full markdown report for one observed cell."""
    cell = manifest["cell"]
    t = manifest["time"]
    work = manifest["work"]
    lines = [
        f"# Telemetry report — {cell['workload']} / {cell['protocol']}",
        "",
        f"- engine: `{cell['engine']}`, placement: `{cell['placement']}`"
        f", seed {cell['seed']}, ops_scale {cell['ops_scale']}",
        f"- fault plan: "
        f"`{(cell['fault_plan'] or {}).get('name', 'none')}`",
        f"- cycles: **{t['cycles']:.0f}** "
        f"(bottleneck `{t['bottleneck']['resource']}"
        f"[{t['bottleneck']['index']}]`)",
        f"- ops: {work['ops']}, L1 hit rate "
        f"{work['l1']['hit_rate']:.3f}, L2 hit rate "
        f"{work['l2']['hit_rate']:.3f}",
        f"- inter-GPU bytes: {manifest['traffic']['inter_gpu_bytes']:,}",
    ]
    degradation = manifest.get("degradation")
    if degradation:
        lines.append(
            f"- degradation: {degradation['retries']} retries, "
            f"{degradation['dropped_messages']} drops, "
            f"{degradation['recovered_messages']} recovered"
        )

    lines += ["", "## Top link hogs (inter-GPU, by bytes)", ""]
    hogs = top_link_hogs(trace_doc)
    if hogs:
        peak = hogs[0][2]
        lines.append("| src | dst | bytes | |")
        lines.append("|-----|-----|------:|---|")
        for src, dst, nbytes in hogs:
            lines.append(f"| {src} | {dst} | {nbytes:,} "
                         f"| `{_bar(nbytes, peak)}` |")
    else:
        lines.append("_No inter-GPU messages recorded._")

    lines += ["", "## Invalidation fan-out histogram", ""]
    hist = fanout_histogram(trace_doc)
    if hist:
        peak = max(hist.values())
        lines.append("| sharers invalidated | fan-outs | |")
        lines.append("|--------------------:|---------:|---|")
        for sharers in sorted(hist):
            lines.append(f"| {sharers} | {hist[sharers]} "
                         f"| `{_bar(hist[sharers], peak)}` |")
    else:
        lines.append("_No invalidation fan-outs recorded "
                     "(software protocols invalidate in bulk)._")

    lines += ["", "## Hit-rate curves (per interval bin)", ""]
    if intervals:
        l1, l2 = hit_rate_series(intervals)
        unit = intervals[0].get("unit", "cycles")
        lines.append(f"{len(intervals)} bins of "
                     f"{intervals[0]['t1'] - intervals[0]['t0']:.0f} "
                     f"{unit} each")
        lines.append("")
        lines.append(f"    L1  {sparkline(l1)}  "
                     f"({min(l1):.2f}–{max(l1):.2f})")
        lines.append(f"    L2  {sparkline(l2)}  "
                     f"({min(l2):.2f}–{max(l2):.2f})")
    else:
        lines.append("_No interval samples recorded._")

    lines += ["", "## Message mix (type x scope)", ""]
    mix: dict = {}
    for row in intervals:
        for key, count in row.get("counters", {}).get("messages",
                                                      {}).items():
            mix[key] = mix.get(key, 0) + count
    if mix:
        peak = max(mix.values())
        lines.append("| message.scope | count | |")
        lines.append("|---------------|------:|---|")
        for key in sorted(mix, key=lambda k: (-mix[k], k)):
            lines.append(f"| {key} | {mix[key]:,} "
                         f"| `{_bar(mix[key], peak)}` |")
    else:
        lines.append("_No messages recorded._")

    faults = [e for e in trace_doc.get("traceEvents", ())
              if e.get("cat") == "fault"]
    if faults:
        lines += ["", "## Fault windows", "",
                  f"{len(faults)} degradation window(s) recorded on "
                  f"{len({e['args']['link'] for e in faults})} link(s)."]

    lines += ["", "---", "",
              "Open the Chrome trace (`trace.json`) in "
              "[Perfetto](https://ui.perfetto.dev) or "
              "`chrome://tracing` to see the event timeline.", ""]
    return "\n".join(lines)
