"""Bandwidth-limited link model for the detailed (event-driven) engine.

Each :class:`Link` is a directional serial resource: a message occupies
it for ``size / bytes_per_cycle`` cycles, queued FIFO behind earlier
messages, then takes ``latency`` further cycles to propagate.  This is
the standard single-server queue used by network simulators when the
topology's internal switching is not the object of study.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class LinkStats:
    messages: int = 0
    bytes: int = 0
    busy_cycles: float = 0.0
    queue_cycles: float = 0.0
    #: Cycles messages spent waiting out injected fault windows, plus
    #: fault-added propagation latency (0 unless a fault plan is active).
    fault_delay_cycles: float = 0.0

    def utilization(self, elapsed: float) -> float:
        """Busy fraction over an elapsed window."""
        return self.busy_cycles / elapsed if elapsed > 0 else 0.0


class Link:
    """A directional, bandwidth-limited link with backlog queuing.

    The link tracks how many cycles of *unserved work* (backlog) it is
    carrying; backlog drains in real time at the link rate.  A message
    sent at time ``t`` waits for the backlog present at ``t``, is served
    for ``size / bytes_per_cycle`` cycles, then propagates for
    ``latency`` further cycles.  Propagation latency is pipelined wire
    delay — it never occupies the link, so latency-laden arrival times
    downstream cannot inflate apparent occupancy upstream (the classic
    ratcheting artefact of ``free_at = max(now, free_at) + service``
    recursions fed out-of-order timestamps).
    """

    def __init__(self, name: str, bytes_per_cycle: float,
                 latency: float = 0.0):
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.name = name
        self.bytes_per_cycle = bytes_per_cycle
        self.latency = latency
        self._backlog = 0.0  # cycles of queued, unserved work
        self._last_time = 0.0
        self.stats = LinkStats()
        #: Optional :class:`repro.faults.LinkFaultProfile`.  When set,
        #: messages wait out outage windows, are served at the window's
        #: degraded rate, and pay the window's extra latency.
        self.fault_profile = None

    def send(self, now: float, size_bytes: int) -> float:
        """Enqueue a message at time ``now``; returns its arrival time."""
        fault_wait = 0.0
        extra_latency = 0.0
        rate = self.bytes_per_cycle
        if self.fault_profile is not None:
            available = self.fault_profile.next_available(now)
            fault_wait = available - now
            factor, extra_latency = self.fault_profile.state_at(available)
            rate *= factor
            self.stats.fault_delay_cycles += fault_wait + extra_latency
        if now > self._last_time:
            elapsed = now - self._last_time
            self._backlog = max(0.0, self._backlog - elapsed)
            self._last_time = now
        wait = self._backlog
        service = size_bytes / rate
        self._backlog += service
        self.stats.messages += 1
        self.stats.bytes += size_bytes
        self.stats.busy_cycles += service
        self.stats.queue_cycles += wait
        # Departure is relative to the message's own arrival time; for
        # out-of-order (earlier-timestamped) arrivals the backlog seen
        # is the one recorded as of the latest observation — a slight
        # pessimism that, unlike timestamp clamping, cannot ratchet.
        return now + fault_wait + wait + service + self.latency + extra_latency

    @property
    def free_at(self) -> float:
        """Time at which the currently-known backlog will have drained."""
        return self._last_time + self._backlog

    @property
    def backlog_cycles(self) -> float:
        return self._backlog

    def reset(self) -> None:
        """Clear backlog, clock and statistics."""
        self._backlog = 0.0
        self._last_time = 0.0
        self.stats = LinkStats()
