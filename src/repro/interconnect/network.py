"""System topology: per-GPU crossbars joined by an NVSwitch-style hub.

The network mirrors Fig 1: every GPM connects to its GPU's crossbar
(2 TB/s aggregate, Table II), and every GPU has one bidirectional
200 GB/s connection into a non-blocking switch, so any pair of GPUs
communicates at full link rate without transit interference.

Routing a message yields the ordered list of :class:`~repro.interconnect.link.Link`
resources it occupies, which the detailed engine threads the message
through; the throughput engine uses the same topology shape implicitly
in its per-resource byte accounting.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.core.types import NodeId
from repro.interconnect.link import Link


class Network:
    """Hierarchical two-level network: crossbars + inter-GPU switch."""

    def __init__(self, cfg: SystemConfig):
        self.cfg = cfg
        xbar_rate = cfg.inter_gpm_bytes_per_cycle
        link_rate = cfg.inter_gpu_bytes_per_cycle
        hop = cfg.latency.inter_gpm_hop
        gpu_hop = cfg.latency.inter_gpu_hop
        # The crossbar is modelled as one aggregate resource per GPU;
        # its unloaded latency is charged on the message's hop count.
        self.xbars = [
            Link(f"xbar[{g}]", xbar_rate, latency=hop / 2)
            for g in range(cfg.num_gpus)
        ]
        self.links_out = [
            Link(f"link_out[{g}]", link_rate, latency=gpu_hop / 2)
            for g in range(cfg.num_gpus)
        ]
        self.links_in = [
            Link(f"link_in[{g}]", link_rate, latency=gpu_hop / 2)
            for g in range(cfg.num_gpus)
        ]

    def route(self, src: NodeId, dst: NodeId) -> list:
        """Ordered link resources a message from src to dst occupies."""
        if src == dst:
            return []
        if src.gpu == dst.gpu:
            return [self.xbars[src.gpu]]
        return [
            self.xbars[src.gpu],
            self.links_out[src.gpu],
            self.links_in[dst.gpu],
            self.xbars[dst.gpu],
        ]

    def deliver(self, now: float, src: NodeId, dst: NodeId,
                size_bytes: int) -> float:
        """Thread a message through its route; returns arrival time."""
        t = now
        for link in self.route(src, dst):
            t = link.send(t, size_bytes)
        return t

    def all_links(self) -> list:
        """Every link resource (crossbars + both link directions)."""
        return list(self.xbars) + list(self.links_out) + list(self.links_in)

    def telemetry_counters(self) -> dict:
        """Cumulative per-GPU interconnect counters for the telemetry
        interval sampler: bytes carried and busy cycles per direction,
        plus crossbar bytes.  Lists index by GPU, matching the
        throughput engine's sink layout so both engines' interval
        series share a schema."""
        return {
            "link_out_bytes": [l.stats.bytes for l in self.links_out],
            "link_in_bytes": [l.stats.bytes for l in self.links_in],
            "xbar_bytes": [x.stats.bytes for x in self.xbars],
            "link_out_busy": [l.stats.busy_cycles for l in self.links_out],
            "link_in_busy": [l.stats.busy_cycles for l in self.links_in],
            "fault_delay": [
                self.links_out[g].stats.fault_delay_cycles
                + self.links_in[g].stats.fault_delay_cycles
                for g in range(self.cfg.num_gpus)
            ],
        }

    def reset(self) -> None:
        """Reset every link's backlog and statistics."""
        for link in self.all_links():
            link.reset()
