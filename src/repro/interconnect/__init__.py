"""Interconnect: links and the two-level crossbar + switch topology."""

from repro.interconnect.link import Link, LinkStats
from repro.interconnect.network import Network

__all__ = ["Link", "LinkStats", "Network"]
