"""HMG — hierarchical multi-GPU hardware coherence (Section V).

HMG layers NHCC twice.  Within each GPU, a *GPU home node* per address
keeps the GPU's GPMs coherent; across GPUs, the *system home node* (the
GPU home node inside the page-owning GPU) keeps the GPUs coherent,
tracking peer GPUs only at GPU granularity.  Invalidations fan out
hierarchically: an invalidation arriving at a GPU home node is forwarded
to that GPU's GPM sharers (the single extra transition in Table I).

Requests and write-throughs route local L2 -> GPU home -> system home;
only the GPU identifier crosses the inter-GPU network, never the
requesting GPM's identity.
"""

from __future__ import annotations

from repro.core.directory import DirectoryEntry, Sharer
from repro.core.protocol import AccessOutcome, CoherenceProtocol
from repro.core.types import MemOp, MsgType, NodeId, Scope


class HMGProtocol(CoherenceProtocol):
    """Two-layer hierarchical hardware coherence."""

    name = "hmg"
    label = "HMG Coherence"
    has_directory = True

    # ------------------------------------------------------------------
    # Invalidation machinery
    # ------------------------------------------------------------------

    def _drop_sector_lines(self, node: NodeId, sector: int) -> int:
        l2 = self.l2[self.flat(node)]
        dropped = 0
        for line in self.amap.lines_in_sector(sector):
            if l2.invalidate(line) is not None:
                dropped += 1
        return dropped

    def _inv_gpu_sharer(self, home: NodeId, gpu: int, sector: int) -> int:
        """Invalidate a peer GPU: send one invalidation to its GPU home
        node, which drops its own copy and forwards to its GPM sharers
        (Table I, the HMG-only transition)."""
        ghome = NodeId(gpu, self.amap.home_gpm_of_sector(sector))
        self.send(MsgType.INVALIDATION, home, ghome, sector)
        dropped = self._drop_sector_lines(ghome, sector)
        directory = self.dirs[self.flat(ghome)]
        entry = directory.lookup(sector, touch=False)
        if entry is not None:
            forwarded = 0
            for sharer in sorted(entry.sharers):
                # Entries at a non-owner GPU home only track local GPMs.
                target = NodeId(gpu, sharer.index)
                self.send(MsgType.INVALIDATION, ghome, target, sector)
                dropped += self._drop_sector_lines(target, sector)
                forwarded += 1
            directory.invalidate(sector)
            if self._tracing and forwarded:
                # Table I's HMG-only transition: the peer GPU home
                # forwards an arriving invalidation to its GPM sharers.
                self.tracer.fanout(ghome, forwarded, dropped, "forward")
        return dropped

    def _inv_sharers(self, home: NodeId, entry: DirectoryEntry,
                     keep: Sharer = None, cause: str = "store") -> int:
        """Hierarchically invalidate every sharer except ``keep``."""
        dropped = 0
        fanned = 0
        for sharer in sorted(entry.sharers):
            if keep is not None and sharer == keep:
                continue
            if sharer.is_gpm:
                target = NodeId(home.gpu, sharer.index)
                if target == home:
                    continue
                self.send(MsgType.INVALIDATION, home, target, entry.sector)
                dropped += self._drop_sector_lines(target, entry.sector)
                fanned += 1
            else:
                dropped += self._inv_gpu_sharer(home, sharer.index,
                                                entry.sector)
                fanned += 1
        if cause == "store":
            self.stats.lines_inv_by_store += dropped
        else:
            self.stats.lines_inv_by_dir_evict += dropped
        if self._tracing and fanned:
            self.tracer.fanout(home, fanned, dropped, cause)
        return dropped

    def _dir_allocate(self, home: NodeId, sector: int) -> DirectoryEntry:
        directory = self.dirs[self.flat(home)]
        entry, victim = directory.allocate(sector)
        if victim is not None and victim.sharers:
            self.stats.dir_evictions += 1
            self._inv_sharers(home, victim, cause="evict")
        return entry

    # ------------------------------------------------------------------
    # Routing helpers
    # ------------------------------------------------------------------

    def _homes(self, line: int, node: NodeId):
        """(gpu_home, sys_home) for a line as seen from ``node``.

        Within the owning GPU the two coincide: the GPU home node of
        the owning GPU is the page's GPM itself.
        """
        return self.homes(line, node)

    def _may_hit(self, cache_node: NodeId, op: MemOp, ghome: NodeId,
                 syshome: NodeId) -> bool:
        """Scope-dependent hit permission (Section V-B, "Loads")."""
        if op.scope == Scope.CTA:
            return True
        if op.scope == Scope.GPU:
            return cache_node in (ghome, syshome)
        return cache_node == syshome

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------

    def _load(self, op: MemOp) -> AccessOutcome:
        line = op.address >> self._line_bits
        ghome, syshome = self.homes(line, op.node)
        lat = self._lat
        latency = self._l1_hit_lat

        if op.scope is Scope.CTA:
            node = op.node
            slices = self.l1[node.gpu * self._gpms_per_gpu + node.gpm]
            hit = slices[op.cta % len(slices)].lookup(line)
            if hit is not None:
                return AccessOutcome(hit.version, latency, hit_level="l1")

        node = op.node
        nflat = node.gpu * self._gpms_per_gpu + node.gpm
        local = self.l2[nflat]
        self.l2_bytes_per_gpm[nflat] += self._line_size
        latency += self._l2_hit_lat
        if self._may_hit(op.node, op, ghome, syshome):
            entry = local.lookup(line)
        else:
            entry = None
            local.stats.misses += 1
        if entry is not None:
            self._l1_fill(op, line, entry.version, remote=op.node != syshome)
            level = ("sys_home" if op.node == syshome
                     else "gpu_home" if op.node == ghome else "local_l2")
            return AccessOutcome(entry.version, latency, hit_level=level)

        if op.node == syshome:
            # Local miss at the system home itself: straight to DRAM.
            version = self.dram[self.flat(syshome)].read(line)
            latency += lat.dram_access
            victim = local.fill(line, version, remote=False)
            self._handle_l2_victim(op.node, victim)
            self._l1_fill(op, line, version, remote=False)
            return AccessOutcome(version, latency, hit_level="dram")

        # Miss: climb the hierarchy — GPU home first (if we are not it).
        version = None
        level = "dram"
        sector = self.amap.sector_of_line(line)
        if op.node != ghome:
            self.send(MsgType.LOAD_REQ, op.node, ghome, line)
            latency += 2 * self.hop_latency(op.node, ghome)
            self._l2_touch(ghome, self._line_size)
            latency += self._l2_hit_lat
            ghome_l2 = self.l2[self.flat(ghome)]
            if self._may_hit(ghome, op, ghome, syshome):
                gentry = ghome_l2.lookup(line)
            else:
                gentry = None
                ghome_l2.stats.misses += 1
            if gentry is not None:
                version = gentry.version
                level = "gpu_home" if ghome != syshome else "sys_home"
            # The GPU home tracks the requesting GPM either way — on a
            # forwarded miss it will cache the response too.
            dentry = self._dir_allocate(ghome, sector)
            dentry.add(Sharer.gpm(op.node.gpm))

        if version is None and ghome != syshome:
            # Forward to the system home; only the GPU id crosses.
            self.stats.remote_gpu_loads += 1
            src = ghome
            self.send(MsgType.LOAD_REQ, src, syshome, line)
            latency += 2 * self.hop_latency(src, syshome)
            self._l2_touch(syshome, self._line_size)
            latency += self._l2_hit_lat
            sentry = self.l2[self.flat(syshome)].lookup(line)
            if sentry is not None:
                version = sentry.version
                level = "sys_home"
            else:
                version = self.dram[self.flat(syshome)].read(line)
                latency += lat.dram_access
                svictim = self.l2[self.flat(syshome)].fill(
                    line, version, remote=False
                )
                self._handle_l2_victim(syshome, svictim)
            dentry = self._dir_allocate(syshome, sector)
            dentry.add(Sharer.gpu(op.node.gpu))
            self.send(MsgType.DATA_RESP, syshome, src, line)
            # Response fills the GPU home on its way back (Fig 6b).
            if op.node != ghome:
                gvictim = self.l2[self.flat(ghome)].fill(
                    line, version, remote=True
                )
                self._handle_l2_victim(ghome, gvictim)
                self._l2_touch(ghome, self._line_size)
        elif version is None:
            # Owning GPU, requester is not the home: the home L2 missed,
            # so the home fetches from its DRAM and keeps a copy.
            version = self.dram[self.flat(syshome)].read(line)
            latency += lat.dram_access
            svictim = self.l2[self.flat(syshome)].fill(
                line, version, remote=False
            )
            self._handle_l2_victim(syshome, svictim)

        if op.node != ghome:
            self.send(MsgType.DATA_RESP, ghome, op.node, line)

        victim = local.fill(line, version, remote=True)
        self._handle_l2_victim(op.node, victim)
        self._l1_fill(op, line, version, remote=True)
        return AccessOutcome(version, latency, hit_level=level)

    # ------------------------------------------------------------------
    # Stores and atomics
    # ------------------------------------------------------------------

    def _store_at_gpu_home(self, requester: NodeId, ghome: NodeId,
                           sector: int, is_sys_home: bool,
                           version: int) -> None:
        """Apply the Table I transition at a GPU home node."""
        directory = self.dirs[self.flat(ghome)]
        if requester == ghome:
            # Local store: inv all sharers, -> I.
            entry = directory.lookup(sector, touch=False)
            if entry is not None:
                if entry.sharers:
                    self.stats.stores_on_shared += 1
                    self._inv_sharers(ghome, entry, cause="store")
                directory.invalidate(sector)
            return
        # Remote store: add sender, inv other sharers, stay V.
        if requester.gpu == ghome.gpu:
            me = Sharer.gpm(requester.gpm)
        else:
            me = Sharer.gpu(requester.gpu)
        entry = self._dir_allocate(ghome, sector)
        if entry.others(me):
            self.stats.stores_on_shared += 1
            self._inv_sharers(ghome, entry, keep=me, cause="store")
        entry.sharers = {me}

    def _store(self, op: MemOp) -> AccessOutcome:
        line = op.address >> self._line_bits
        ghome, syshome = self.homes(line, op.node)
        version = self._new_version()
        lat = self._lat
        payload = min(op.size, self._line_size)
        latency = self._l1_hit_lat

        self._l1_store(op, line, version, remote=op.node != syshome)
        node = op.node
        nflat = node.gpu * self._gpms_per_gpu + node.gpm
        local = self.l2[nflat]
        self.l2_bytes_per_gpm[nflat] += payload
        victim = local.write(line, version, remote=op.node != syshome)
        self._handle_l2_victim(op.node, victim)
        latency += self._l2_hit_lat
        sector = self.amap.sector_of_line(line)

        # Layer 1: the GPU home node of the issuing GPU.
        if op.node != ghome:
            self.send(MsgType.STORE_REQ, op.node, ghome, line,
                      payload=payload)
            latency += self.hop_latency(op.node, ghome)
            gl2 = self.l2[self.flat(ghome)]
            self._l2_touch(ghome, payload)
            gvictim = gl2.write(line, version, remote=ghome != syshome)
            self._handle_l2_victim(ghome, gvictim)
        self._store_at_gpu_home(op.node, ghome, sector,
                                is_sys_home=ghome == syshome,
                                version=version)

        # Layer 2: the system home node, if it lives on another GPU.
        if ghome != syshome:
            self.send(MsgType.STORE_REQ, ghome, syshome, line,
                      payload=payload)
            latency += self.hop_latency(ghome, syshome)
            self._home_store(syshome, line, version, payload)
            # Only the GPU identifier crosses the inter-GPU network.
            self._store_at_gpu_home(op.node, syshome, sector,
                                    is_sys_home=True, version=version)
        else:
            # The GPU home is the system home: its copy is the
            # authoritative one (dirty; written back on eviction).
            target = self.l2[self.flat(syshome)].peek(line)
            if target is not None:
                target.dirty = True
        return AccessOutcome(0, latency)

    def _atomic(self, op: MemOp) -> AccessOutcome:
        line = op.address >> self._line_bits
        if op.scope == Scope.CTA:
            version = self._new_version()
            self._l1_store(op, line, version, remote=False)
            return AccessOutcome(version, self._l1_hit_lat,
                                 exposed=True, hit_level="l1")
        ghome, syshome = self.homes(line, op.node)
        # The atomic executes at the home node for its scope and is then
        # written through to subsequent levels like a store.
        target = ghome if op.scope == Scope.GPU else syshome
        out = self._store(op)
        if op.node != target:
            self.send(MsgType.ATOMIC_RESP, target, op.node, line)
        latency = self._l2_hit_lat + self.rtt(op.node, target)
        return AccessOutcome(self._next_version - 1, latency, exposed=False)

    # ------------------------------------------------------------------
    # Synchronization
    # ------------------------------------------------------------------

    def _acquire(self, op: MemOp) -> AccessOutcome:
        if op.scope == Scope.CTA:
            out = self._load(op)
            out.exposed = True
            return out
        slices = self.l1[self.flat(op.node)]
        slice_index = op.cta % len(slices)
        self.stats.lines_inv_by_acquire += self._invalidate_l1s(
            op.node, slice_index
        )
        out = self._load(op)
        out.latency += self.cfg.timing.bulk_invalidate_cycles
        out.exposed = True
        return out

    def _release_fence(self, op: MemOp, scope: Scope) -> float:
        """Scoped release fence.

        A .gpu release only drains within the issuing GPU — it "need not
        flush all write-back operations across the inter-GPU network"
        (Section V-B).  A .sys release fans out hierarchically.
        """
        farthest = 0
        for gpm in range(self.cfg.gpms_per_gpu):
            other = NodeId(op.node.gpu, gpm)
            if other == op.node:
                continue
            self.send(MsgType.RELEASE_FENCE, op.node, other)
            self.send(MsgType.RELEASE_ACK, other, op.node)
            farthest = max(farthest, self.rtt(op.node, other))
        if scope == Scope.SYS:
            for gpu in range(self.cfg.num_gpus):
                if gpu == op.node.gpu:
                    continue
                peer = NodeId(gpu, op.node.gpm)
                self.send(MsgType.RELEASE_FENCE, op.node, peer)
                farthest = max(farthest, self.rtt(op.node, peer))
                # The peer GPU home fences its own GPMs before acking.
                for gpm in range(self.cfg.gpms_per_gpu):
                    inner = NodeId(gpu, gpm)
                    if inner == peer:
                        continue
                    self.send(MsgType.RELEASE_FENCE, peer, inner)
                    self.send(MsgType.RELEASE_ACK, inner, peer)
                self.send(MsgType.RELEASE_ACK, peer, op.node)
        return float(farthest)

    def _release(self, op: MemOp) -> AccessOutcome:
        out = self._store(op)
        if op.scope == Scope.CTA:
            out.exposed = True
            return out
        fence_latency = self._release_fence(op, op.scope)
        return AccessOutcome(0, out.latency + fence_latency, exposed=True)

    def _kernel_boundary(self, op: MemOp) -> AccessOutcome:
        fence_latency = self._release_fence(op, Scope.SYS)
        self.stats.lines_inv_by_acquire += self._invalidate_l1s(op.node)
        latency = fence_latency + self.cfg.timing.bulk_invalidate_cycles
        return AccessOutcome(0, latency, exposed=True)
