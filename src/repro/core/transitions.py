"""Table I coherence transitions as inspectable guarded actions.

The paper's Table I specifies the NHCC and HMG directory behavior as a
small guarded-action table: two stable states (V/I), no transient
states, no invalidation acknowledgments.  The protocol classes
(:mod:`repro.core.nhcc`, :mod:`repro.core.hmg`) implement these rows
imperatively for speed; this module states them *declaratively* so that

* the bounded model checker (:mod:`repro.verify.model`) drives its
  abstract directory semantics from the same rows the protocols claim
  to implement (the table is load-bearing, not documentation), and
* tests can assert structural properties of the table itself — e.g.
  that the HMG-only transition (an invalidation arriving at a GPU home
  fans out to the local GPM sharers) is present exactly once.

Each :class:`GuardedAction` is one row: in directory state ``state``,
when ``event`` occurs and ``guard`` holds, perform ``actions`` (micro
actions interpreted by the consumer) and move to ``next_state``.

Micro-action vocabulary (interpreted by ``repro.verify.model`` and
mirrored by the protocol implementations):

``add_requester``
    record the requesting sharer (GPM id locally, whole peer GPU at the
    system level) in the sharer set;
``send_data``
    respond to the requester with the line;
``inv_others``
    send (unacknowledged) invalidations to every sharer except the
    requester;
``inv_all``
    send invalidations to every sharer;
``fwd_inv_local``
    forward an incoming invalidation to every *local GPM* sharer — the
    hierarchical fan-out leg that exists only at an HMG GPU home;
``drop_copy``
    drop the home's own cached copy of the line;
``clear``
    deallocate the directory entry (sharer set becomes empty).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Directory levels a row applies to.  NHCC has a single flat level
#: ("home"); HMG splits it into "sys_home" and "gpu_home".
LEVELS = ("home", "sys_home", "gpu_home")


@dataclass(frozen=True)
class GuardedAction:
    """One Table I row: state x event -> guarded actions + next state."""

    protocol: str          #: "nhcc" or "hmg"
    level: str             #: one of :data:`LEVELS`
    state: str             #: "V" or "I"
    event: str             #: e.g. "RemoteStore", "Inv", "Replace"
    guard: str = "true"    #: human-readable side condition
    actions: tuple = field(default_factory=tuple)
    next_state: str = "V"

    def __str__(self) -> str:
        acts = ", ".join(self.actions) or "-"
        return (f"[{self.protocol}/{self.level}] {self.state} "
                f"--{self.event} ({self.guard})--> {self.next_state}: "
                f"{acts}")


#: The flat NHCC directory (one home level; sharers are GPM ids).
_NHCC = (
    GuardedAction("nhcc", "home", "I", "Load",
                  actions=("add_requester", "send_data"), next_state="V"),
    GuardedAction("nhcc", "home", "V", "Load",
                  actions=("add_requester", "send_data"), next_state="V"),
    GuardedAction("nhcc", "home", "I", "LocalStore",
                  actions=(), next_state="I"),
    GuardedAction("nhcc", "home", "V", "LocalStore",
                  actions=("inv_all", "clear"), next_state="I"),
    GuardedAction("nhcc", "home", "I", "RemoteStore",
                  actions=("add_requester",), next_state="V"),
    GuardedAction("nhcc", "home", "V", "RemoteStore",
                  actions=("inv_others", "add_requester"), next_state="V"),
    GuardedAction("nhcc", "home", "V", "Replace",
                  actions=("inv_all", "clear"), next_state="I"),
)

#: HMG's two-level directory.  The sys-home rows mirror NHCC with
#: whole-peer-GPU sharers; the gpu-home rows add the hierarchical
#: invalidation fan-out that Table I introduces for HMG.
_HMG = (
    GuardedAction("hmg", "sys_home", "I", "Load",
                  actions=("add_requester", "send_data"), next_state="V"),
    GuardedAction("hmg", "sys_home", "V", "Load",
                  actions=("add_requester", "send_data"), next_state="V"),
    GuardedAction("hmg", "sys_home", "I", "LocalStore",
                  actions=(), next_state="I"),
    GuardedAction("hmg", "sys_home", "V", "LocalStore",
                  actions=("inv_all", "clear"), next_state="I"),
    GuardedAction("hmg", "sys_home", "I", "RemoteStore",
                  actions=("add_requester",), next_state="V"),
    GuardedAction("hmg", "sys_home", "V", "RemoteStore",
                  actions=("inv_others", "add_requester"), next_state="V"),
    GuardedAction("hmg", "sys_home", "V", "Replace",
                  actions=("inv_all", "clear"), next_state="I"),
    GuardedAction("hmg", "gpu_home", "I", "Load",
                  actions=("add_requester", "send_data"), next_state="V"),
    GuardedAction("hmg", "gpu_home", "V", "Load",
                  actions=("add_requester", "send_data"), next_state="V"),
    GuardedAction("hmg", "gpu_home", "I", "LocalStore",
                  actions=(), next_state="I"),
    GuardedAction("hmg", "gpu_home", "V", "LocalStore",
                  actions=("inv_all", "clear"), next_state="I"),
    GuardedAction("hmg", "gpu_home", "I", "RemoteStore",
                  actions=("add_requester",), next_state="V"),
    GuardedAction("hmg", "gpu_home", "V", "RemoteStore",
                  actions=("inv_others", "add_requester"), next_state="V"),
    GuardedAction("hmg", "gpu_home", "V", "Replace",
                  actions=("inv_all", "clear"), next_state="I"),
    # The HMG-only transition: an invalidation from the system home
    # arriving at a peer GPU's home must be *forwarded* to that GPU's
    # local GPM sharers (there are no acks, so a skipped forward is
    # silent — exactly the mutation the model checker must catch).
    GuardedAction("hmg", "gpu_home", "V", "Inv",
                  guard="local sharer set may be empty",
                  actions=("drop_copy", "fwd_inv_local", "clear"),
                  next_state="I"),
    GuardedAction("hmg", "gpu_home", "I", "Inv",
                  guard="entry already evicted",
                  actions=("drop_copy",), next_state="I"),
)

TABLE_I = _NHCC + _HMG


def transitions_for(protocol: str) -> tuple:
    """All Table I rows for one protocol ("nhcc" or "hmg")."""
    rows = tuple(r for r in TABLE_I if r.protocol == protocol)
    if not rows:
        raise ValueError(f"no Table I rows for protocol {protocol!r}")
    return rows


def find_row(protocol: str, level: str, state: str, event: str):
    """The unique row for (protocol, level, state, event), or None."""
    matches = [r for r in TABLE_I
               if (r.protocol, r.level, r.state, r.event)
               == (protocol, level, state, event)]
    if len(matches) > 1:
        raise ValueError(f"ambiguous Table I rows: {matches}")
    return matches[0] if matches else None


def format_table(protocol: str) -> str:
    """Human-readable rendering of one protocol's table."""
    return "\n".join(str(r) for r in transitions_for(protocol))
