"""Normalization baseline: no caching of remote-GPU data.

This is the configuration every figure normalizes against ("a 4-GPU
system that disallows caching of remote GPU data", Fig 8).  Lines homed
on a peer GPU are never cached in the local GPU's L1s or L2s — every
access to them crosses the inter-GPU network to the system home, which
may serve it from its own L2.  Data homed *within* the GPU is cached
normally and kept correct by flat software coherence (bulk invalidation
of intra-GPU remote lines at synchronization points).
"""

from __future__ import annotations

from repro.core.protocol import AccessOutcome, CoherenceProtocol
from repro.core.types import MemOp, MsgType, NodeId, Scope


class NoRemoteCachingProtocol(CoherenceProtocol):
    """Remote-GPU data is never cached — the paper's baseline."""

    name = "noremote"
    label = "No Remote Caching (baseline)"
    has_directory = False

    def _cacheable(self, home: NodeId, node: NodeId) -> bool:
        """Only data homed within the accessing GPU may be cached."""
        return home.gpu == node.gpu

    # ------------------------------------------------------------------

    def _load(self, op: MemOp) -> AccessOutcome:
        line = op.address >> self._line_bits
        home = self.sys_home(line, op.node)
        cacheable = self._cacheable(home, op.node)
        lat = self._lat
        latency = self._l1_hit_lat

        if cacheable and op.scope is Scope.CTA:
            node = op.node
            slices = self.l1[node.gpu * self._gpms_per_gpu + node.gpm]
            hit = slices[op.cta % len(slices)].lookup(line)
            if hit is not None:
                return AccessOutcome(hit.version, latency, hit_level="l1")

        node = op.node
        nflat = node.gpu * self._gpms_per_gpu + node.gpm
        local = self.l2[nflat]
        may_hit_local = cacheable and (
            op.scope == Scope.CTA or node == home
        )
        if may_hit_local:
            self.l2_bytes_per_gpm[nflat] += self._line_size
            latency += self._l2_hit_lat
            entry = local.lookup(line)
            if entry is not None:
                self._l1_fill(op, line, entry.version, remote=home != op.node)
                return AccessOutcome(entry.version, latency,
                                     hit_level="local_l2")

        if op.node == home:
            version = self.dram[self.flat(home)].read(line)
            latency += lat.dram_access
            victim = local.fill(line, version, remote=False)
            self._handle_l2_victim(op.node, victim)
            self._l1_fill(op, line, version, remote=False)
            return AccessOutcome(version, latency, hit_level="dram")

        if home.gpu != op.node.gpu:
            self.stats.remote_gpu_loads += 1
        self.send(MsgType.LOAD_REQ, op.node, home, line)
        latency += 2 * self.hop_latency(op.node, home)
        home_l2 = self.l2[self.flat(home)]
        self._l2_touch(home, self._line_size)
        latency += self._l2_hit_lat
        hentry = home_l2.lookup(line)
        if hentry is None:
            version = self.dram[self.flat(home)].read(line)
            latency += lat.dram_access
            hvictim = home_l2.fill(line, version, remote=False)
            self._handle_l2_victim(home, hvictim)
            level = "dram"
        else:
            version = hentry.version
            level = "home_l2"
        self.send(MsgType.DATA_RESP, home, op.node, line)
        if cacheable:
            victim = local.fill(line, version, remote=True)
            self._handle_l2_victim(op.node, victim)
            self._l2_touch(op.node, self._line_size)
            self._l1_fill(op, line, version, remote=True)
        return AccessOutcome(version, latency, hit_level=level)

    def _store(self, op: MemOp) -> AccessOutcome:
        line = op.address >> self._line_bits
        home = self.sys_home(line, op.node)
        cacheable = self._cacheable(home, op.node)
        version = self._new_version()
        payload = min(op.size, self._line_size)
        lat = self._lat
        latency = self._l1_hit_lat

        if cacheable:
            self._l1_store(op, line, version, remote=home != op.node)
            nflat = op.node.gpu * self._gpms_per_gpu + op.node.gpm
            local = self.l2[nflat]
            self.l2_bytes_per_gpm[nflat] += payload
            victim = local.write(line, version, dirty=op.node == home,
                                 remote=home != op.node)
            self._handle_l2_victim(op.node, victim)
            latency += self._l2_hit_lat

        if op.node != home:
            self.send(MsgType.STORE_REQ, op.node, home, line, payload=payload)
            latency += self.hop_latency(op.node, home)
            self._home_store(home, line, version, payload)
        return AccessOutcome(0, latency)

    def _atomic(self, op: MemOp) -> AccessOutcome:
        line = op.address >> self._line_bits
        if op.scope == Scope.CTA:
            version = self._new_version()
            self._l1_store(op, line, version, remote=False)
            return AccessOutcome(version, self._l1_hit_lat,
                                 exposed=True, hit_level="l1")
        home = self.sys_home(line, op.node)
        version = self._new_version()
        latency = self._l2_hit_lat
        if op.node != home:
            self.send(MsgType.ATOMIC_REQ, op.node, home, line, payload=16)
            self.send(MsgType.ATOMIC_RESP, home, op.node, line)
            latency += self.rtt(op.node, home)
        self._home_store(home, line, version, self._line_size)
        return AccessOutcome(version, latency, exposed=False)

    def _acquire(self, op: MemOp) -> AccessOutcome:
        if op.scope == Scope.CTA:
            out = self._load(op)
            out.exposed = True
            return out
        slices = self.l1[self.flat(op.node)]
        self.stats.lines_inv_by_acquire += self._invalidate_l1s(
            op.node, op.cta % len(slices)
        )
        # Drop intra-GPU remote lines (software coherence within the GPU).
        dropped = self.l2[self.flat(op.node)].invalidate_where(
            lambda entry: entry.remote
        )
        self.stats.lines_inv_by_acquire += len(dropped)
        self.bulk_invs_per_gpm[self.flat(op.node)] += 1
        out = self._load(op)
        out.latency += self.cfg.timing.bulk_invalidate_cycles
        out.exposed = True
        return out

    def _release(self, op: MemOp) -> AccessOutcome:
        out = self._store(op)
        if op.scope == Scope.CTA:
            out.exposed = True
            return out
        if self.cfg.num_gpus > 1:
            stall = 2.0 * self.cfg.latency.inter_gpu_hop
        else:
            stall = 2.0 * self.cfg.latency.inter_gpm_hop
        return AccessOutcome(0, out.latency + stall, exposed=True)

    def _kernel_boundary(self, op: MemOp) -> AccessOutcome:
        if self.cfg.num_gpus > 1:
            stall = 2.0 * self.cfg.latency.inter_gpu_hop
        else:
            stall = 2.0 * self.cfg.latency.inter_gpm_hop
        self.stats.lines_inv_by_acquire += self._invalidate_l1s(op.node)
        dropped = self.l2[self.flat(op.node)].invalidate_where(
            lambda entry: entry.remote
        )
        self.stats.lines_inv_by_acquire += len(dropped)
        self.bulk_invs_per_gpm[self.flat(op.node)] += 1
        latency = stall + self.cfg.timing.bulk_invalidate_cycles
        return AccessOutcome(0, latency, exposed=True)
