"""Protocol framework shared by every coherence scheme.

A :class:`CoherenceProtocol` owns the *functional* state of the machine:
L1 slices, L2 partitions, DRAM partitions, the page table, and (for the
hardware protocols) coherence directories.  Processing a trace op
mutates that state, pushes the generated coherence traffic into a
:class:`TrafficSink`, and returns a compact :class:`AccessOutcome` that
the timing engines consume.

Keeping traffic emission behind a sink interface lets the throughput
engine aggregate bytes-per-resource with no per-message allocation,
while the detailed engine can materialize real messages and schedule
them through link queues.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.core.directory import CoherenceDirectory
from repro.core.types import MemOp, MsgType, NodeId, OpType, Scope
from repro.memsys.address import AddressMap
from repro.memsys.cache import CacheLine, SetAssociativeCache
from repro.memsys.dram import DramPartition
from repro.memsys.page_table import PageTable, make_placement
from repro.telemetry.tracer import NULL_TRACER


class TrafficSink(abc.ABC):
    """Receives every coherence message the protocol emits."""

    @abc.abstractmethod
    def send(self, mtype: MsgType, src: NodeId, dst: NodeId,
             line: int, size_bytes: int) -> None:
        """One message of ``size_bytes`` from ``src`` to ``dst``."""


class NullSink(TrafficSink):
    """Discards traffic — for purely functional tests."""

    def send(self, mtype, src, dst, line, size_bytes):
        pass


class RecordingSink(TrafficSink):
    """Keeps every message — for protocol unit tests."""

    def __init__(self):
        self.messages = []

    def send(self, mtype, src, dst, line, size_bytes):
        from repro.core.types import Message

        self.messages.append(
            Message(mtype, src, dst, address=line, size_bytes=size_bytes)
        )

    def of_type(self, mtype: MsgType):
        """All recorded messages of one type."""
        return [m for m in self.messages if m.mtype == mtype]

    def clear(self):
        """Drop all recorded messages."""
        self.messages.clear()


class AccessOutcome:
    """Result of one processed trace operation."""

    __slots__ = ("version", "latency", "exposed", "hit_level")

    def __init__(self, version: int = 0, latency: float = 0.0,
                 exposed: bool = False, hit_level: str = "none"):
        #: Functional version of the data a load observed (0 for writes).
        self.version = version
        #: Unloaded critical-path latency of the op, in cycles.
        self.latency = latency
        #: True when the latency is exposed to the pipeline (sync ops).
        self.exposed = exposed
        #: Where a load was satisfied: l1, local_l2, gpu_home, sys_home,
        #: dram — or 'none' for non-loads.
        self.hit_level = hit_level

    def __repr__(self):
        return (f"AccessOutcome(v{self.version}, {self.latency:.0f}cy, "
                f"{self.hit_level}{', exposed' if self.exposed else ''})")


@dataclass(slots=True)
class ProtocolStats:
    """Coherence-event counters, aggregated over a whole run."""

    op_counts: dict = field(default_factory=dict)  # OpType -> int
    msg_counts: dict = field(default_factory=dict)  # MsgType -> int
    msg_bytes: dict = field(default_factory=dict)  # MsgType -> int

    loads: int = 0
    remote_gpu_loads: int = 0  # loads whose system home is a peer GPU
    stores: int = 0
    #: Stores that found at least one other sharer in a directory.
    stores_on_shared: int = 0
    #: Cache lines actually dropped from caches due to store-triggered
    #: invalidations (Fig 9 numerator).
    lines_inv_by_store: int = 0
    #: Directory entry evictions that had sharers (Fig 10 denominator).
    dir_evictions: int = 0
    #: Lines dropped due to directory-eviction invalidations (Fig 10).
    lines_inv_by_dir_evict: int = 0
    #: Lines dropped by software bulk (acquire-time) invalidations.
    lines_inv_by_acquire: int = 0
    acquires: int = 0
    releases: int = 0
    kernel_boundaries: int = 0
    atomics: int = 0

    def count_op(self, op: OpType) -> None:
        """Tally one processed trace operation."""
        self.op_counts[op] = self.op_counts.get(op, 0) + 1

    def count_msg(self, mtype: MsgType, size: int) -> None:
        """Tally one emitted message and its bytes."""
        self.msg_counts[mtype] = self.msg_counts.get(mtype, 0) + 1
        self.msg_bytes[mtype] = self.msg_bytes.get(mtype, 0) + size

    @property
    def inv_messages(self) -> int:
        return self.msg_counts.get(MsgType.INVALIDATION, 0)

    @property
    def inv_bytes(self) -> int:
        return self.msg_bytes.get(MsgType.INVALIDATION, 0)

    @property
    def total_message_bytes(self) -> int:
        return sum(self.msg_bytes.values())

    @property
    def lines_inv_per_shared_store(self) -> float:
        """Fig 9 metric."""
        if not self.stores_on_shared:
            return 0.0
        return self.lines_inv_by_store / self.stores_on_shared

    @property
    def lines_inv_per_dir_eviction(self) -> float:
        """Fig 10 metric."""
        if not self.dir_evictions:
            return 0.0
        return self.lines_inv_by_dir_evict / self.dir_evictions


class CoherenceProtocol(abc.ABC):
    """Functional model of one coherence scheme over the whole machine.

    Subclasses implement the per-op-type flows; this base provides the
    machine structure, address/home mapping, message emission, L1
    handling, and the version clock used for value tracking.
    """

    #: Registry name; subclasses override.
    name = "abstract"
    #: Human-readable label used in figures.
    label = "Abstract"
    #: Whether this protocol maintains coherence directories.
    has_directory = False

    def __init__(self, cfg: SystemConfig, sink: TrafficSink = None,
                 placement: str = "first_touch"):
        self.cfg = cfg
        self.sink = sink if sink is not None else NullSink()
        #: Telemetry event sink (:mod:`repro.telemetry.tracer`).  The
        #: default is the shared no-op tracer; install a recording one
        #: with :meth:`set_tracer`.  Hot-path instrumentation sites
        #: guard on the cached ``_tracing`` bool — one attribute load
        #: and branch per potential event, nothing else, when off.
        self.tracer = NULL_TRACER
        self._tracing = False
        self.amap = AddressMap.from_config(cfg)
        self.page_table = PageTable(
            cfg.page_size,
            make_placement(placement, cfg.num_gpus, cfg.gpms_per_gpu),
        )
        self.stats = ProtocolStats()
        self._next_version = 1
        # Hot-path constants and memos.  Home mapping is a pure function
        # of the line (after the page's first touch pins its owner), so
        # both lookups are memoized per protocol instance; the message
        # size table flattens the per-class if-chain into dict lookups.
        self._gpms_per_gpu = cfg.gpms_per_gpu
        self._sys_home_memo: dict = {}
        self._homes_memo: dict = {}
        self._lat = cfg.latency
        self._l1_hit_lat = float(cfg.latency.l1_hit)
        self._l2_hit_lat = float(cfg.latency.l2_hit)
        self._line_size = cfg.line_size
        self._line_bits = self.amap.line_bits
        sizes = cfg.message_sizes
        data_size = sizes.data_payload_extra + cfg.line_size
        self._req_header = sizes.request_header
        self._fixed_msg_size = {
            MsgType.DATA_RESP: data_size,
            MsgType.WRITEBACK: data_size,
            MsgType.ATOMIC_RESP: sizes.request_header,
            MsgType.INVALIDATION: sizes.invalidation,
            MsgType.RELEASE_FENCE: sizes.release_fence,
            MsgType.RELEASE_ACK: sizes.acknowledgment,
            MsgType.INV_ACK: sizes.acknowledgment,
            MsgType.DOWNGRADE: sizes.downgrade,
        }

        n = cfg.total_gpms
        self.l2: list[SetAssociativeCache] = [
            self._make_l2(i) for i in range(n)
        ]
        self.l1: list[list[SetAssociativeCache]] = [
            [
                SetAssociativeCache(
                    cfg.l1_bytes_per_slice, cfg.line_size, cfg.l1_ways,
                    name=f"l1[{i}][{s}]",
                )
                for s in range(cfg.l1_slices_per_gpm)
            ]
            for i in range(n)
        ]
        self.dram: list[DramPartition] = [
            DramPartition(cfg.line_size, name=f"dram[{i}]") for i in range(n)
        ]
        self.dirs: list[CoherenceDirectory] = (
            [
                CoherenceDirectory(
                    cfg.dir_entries_per_gpm, cfg.dir_ways, name=f"dir[{i}]"
                )
                for i in range(n)
            ]
            if self.has_directory
            else []
        )
        #: Per-GPM count of ops issued (throughput engine input).
        self.ops_per_gpm = [0] * n
        #: Per-GPM L2 data-bank bytes moved (throughput engine input).
        self.l2_bytes_per_gpm = [0.0] * n
        #: Per-GPM count of whole-cache bulk invalidations (timing cost).
        self.bulk_invs_per_gpm = [0] * n

    def set_tracer(self, tracer) -> None:
        """Install a telemetry tracer and refresh the hot-path guard.

        ``_tracing`` caches ``tracer.enabled`` so instrumentation sites
        branch on one bool attribute instead of dereferencing the
        tracer first — the difference compiles telemetry out of the
        per-op loop when the null tracer is active.
        """
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._tracing = self.tracer.enabled

    def _make_l2(self, flat_index: int) -> SetAssociativeCache:
        return SetAssociativeCache(
            self.cfg.l2_bytes_per_gpm, self.cfg.line_size, self.cfg.l2_ways,
            name=f"l2[{flat_index}]",
        )

    # ------------------------------------------------------------------
    # Identity / mapping helpers
    # ------------------------------------------------------------------

    def flat(self, node: NodeId) -> int:
        """Flatten a (gpu, gpm) id to a machine-wide index."""
        return node.gpu * self._gpms_per_gpu + node.gpm

    def node(self, flat_index: int) -> NodeId:
        """Inverse of :meth:`flat`."""
        return NodeId.from_flat(flat_index, self.cfg.gpms_per_gpu)

    def all_nodes(self):
        """Every GPM of the machine, in flat order."""
        for i in range(self.cfg.total_gpms):
            yield self.node(i)

    def sys_home(self, line: int, toucher: NodeId) -> NodeId:
        """System home node of a line: the GPM whose DRAM holds its page
        (placing the page first-touch if untouched).

        Memoized per line: once the containing page is placed, the home
        never changes under any placement policy, and this lookup sits
        on the per-op hot path of every protocol.
        """
        try:
            return self._sys_home_memo[line]
        except KeyError:
            page = self.amap.page_of_line(line)
            home = self.page_table.owner_of_page(page, toucher)
            self._sys_home_memo[line] = home
            return home

    def gpu_home(self, line: int, gpu: int, syshome: NodeId) -> NodeId:
        """GPU home node for a line within ``gpu`` (Section V-A): the
        system home itself inside the owning GPU, a hash-designated GPM
        elsewhere."""
        return self.amap.gpu_home(line, gpu, syshome)

    def homes(self, line: int, node: NodeId) -> tuple:
        """(gpu_home, sys_home) for a line as seen from ``node``.

        Memoized per ``(line, gpu)``: both homes are stable once the
        page is placed, and the pair is recomputed for every load and
        store the protocols process.
        """
        key = (line, node.gpu)
        try:
            return self._homes_memo[key]
        except KeyError:
            syshome = self.sys_home(line, node)
            pair = (self.amap.gpu_home(line, node.gpu, syshome), syshome)
            self._homes_memo[key] = pair
            return pair

    def l1_slice(self, op: MemOp) -> SetAssociativeCache:
        """The L1 slice an op's CTA maps to."""
        node = op.node
        slices = self.l1[node.gpu * self._gpms_per_gpu + node.gpm]
        return slices[op.cta % len(slices)]

    # ------------------------------------------------------------------
    # Latency helpers
    # ------------------------------------------------------------------

    def hop_latency(self, src: NodeId, dst: NodeId) -> int:
        """One-way network latency between two GPMs."""
        if src == dst:
            return 0
        if src.gpu == dst.gpu:
            return self._lat.inter_gpm_hop
        return self._lat.inter_gpu_hop

    def rtt(self, src: NodeId, dst: NodeId) -> int:
        """Unloaded round-trip latency between two GPMs."""
        return 2 * self.hop_latency(src, dst)

    # ------------------------------------------------------------------
    # Message / accounting helpers
    # ------------------------------------------------------------------

    def _msg_size(self, mtype: MsgType, payload: int = 0) -> int:
        size = self._fixed_msg_size.get(mtype)
        if size is not None:
            return size
        if mtype in (MsgType.LOAD_REQ, MsgType.ATOMIC_REQ,
                     MsgType.STORE_REQ):
            return self._req_header + payload
        raise ValueError(f"unknown message type {mtype}")

    def send(self, mtype: MsgType, src: NodeId, dst: NodeId,
             line: int = 0, payload: int = 0) -> None:
        """Emit one message: account it and hand it to the sink."""
        size = self._fixed_msg_size.get(mtype)
        if size is None:
            size = self._msg_size(mtype, payload)
        stats = self.stats
        try:
            stats.msg_counts[mtype] += 1
        except KeyError:
            stats.msg_counts[mtype] = 1
        try:
            stats.msg_bytes[mtype] += size
        except KeyError:
            stats.msg_bytes[mtype] = size
        self.sink.send(mtype, src, dst, line, size)

    def _l2_touch(self, node: NodeId, nbytes: int) -> None:
        self.l2_bytes_per_gpm[node.gpu * self._gpms_per_gpu + node.gpm] += (
            nbytes
        )

    def _new_version(self) -> int:
        v = self._next_version
        self._next_version += 1
        return v

    def _home_store(self, home: NodeId, line: int, version: int,
                    payload: int) -> None:
        """Apply a store at its home node.

        The home L2 keeps the line dirty (it is the last level before
        DRAM); DRAM is updated when the dirty line is evicted, as a
        memory-side cache would, rather than on every write-through.
        """
        l2 = self.l2[self.flat(home)]
        self._l2_touch(home, payload)
        victim = l2.write(line, version, dirty=True, remote=False)
        self._handle_l2_victim(home, victim)

    # ------------------------------------------------------------------
    # L2 victim handling (shared)
    # ------------------------------------------------------------------

    def _handle_l2_victim(self, node: NodeId, victim: CacheLine) -> None:
        """Default victim policy: silent clean eviction; dirty lines are
        written back to the home node.  Subclasses with directories add
        downgrade handling."""
        if victim is None:
            return
        if self._tracing:
            self.tracer.evict("l2", node, victim.line, victim.dirty)
        if victim.dirty:
            home = self.sys_home(victim.line, node)
            if home != node:
                self.send(MsgType.WRITEBACK, node, home, victim.line)
            self.dram[self.flat(home)].write(victim.line, victim.version)

    # ------------------------------------------------------------------
    # Op processing
    # ------------------------------------------------------------------

    def process(self, op: MemOp) -> AccessOutcome:
        """Run one trace operation through the protocol."""
        kind = op.op
        node = op.node
        stats = self.stats
        counts = stats.op_counts
        try:
            counts[kind] += 1
        except KeyError:
            counts[kind] = 1
        self.ops_per_gpm[node.gpu * self._gpms_per_gpu + node.gpm] += 1
        # Identity comparison is safe (enum members are singletons) and
        # the branches are ordered by trace frequency.
        if kind is OpType.LOAD:
            stats.loads += 1
            return self._load(op)
        if kind is OpType.STORE:
            stats.stores += 1
            return self._store(op)
        if kind is OpType.ATOMIC:
            stats.atomics += 1
            return self._atomic(op)
        if kind is OpType.ACQUIRE:
            stats.acquires += 1
            return self._acquire(op)
        if kind is OpType.RELEASE:
            stats.releases += 1
            return self._release(op)
        if kind is OpType.KERNEL_BOUNDARY:
            stats.kernel_boundaries += 1
            return self._kernel_boundary(op)
        raise ValueError(f"unknown op type {op.op}")

    @abc.abstractmethod
    def _load(self, op: MemOp) -> AccessOutcome: ...

    @abc.abstractmethod
    def _store(self, op: MemOp) -> AccessOutcome: ...

    @abc.abstractmethod
    def _atomic(self, op: MemOp) -> AccessOutcome: ...

    @abc.abstractmethod
    def _acquire(self, op: MemOp) -> AccessOutcome: ...

    @abc.abstractmethod
    def _release(self, op: MemOp) -> AccessOutcome: ...

    def _kernel_boundary(self, op: MemOp) -> AccessOutcome:
        """Implicit .sys release + acquire for one GPM (bulk-synchronous
        kernel dependency).  Subclasses refine the invalidation part."""
        rel = self._release(op.with_scope(Scope.SYS))
        acq = self._acquire(op.with_scope(Scope.SYS))
        return AccessOutcome(
            latency=rel.latency + acq.latency, exposed=True
        )

    # ------------------------------------------------------------------
    # Shared flow fragments
    # ------------------------------------------------------------------

    def _l1_load(self, op: MemOp, line: int):
        """Probe the issuing L1 slice; scoped (> .cta) loads must miss."""
        if op.scope > Scope.CTA:
            return None
        node = op.node
        slices = self.l1[node.gpu * self._gpms_per_gpu + node.gpm]
        return slices[op.cta % len(slices)].lookup(line)

    def _l1_fill(self, op: MemOp, line: int, version: int,
                 remote: bool) -> None:
        node = op.node
        slices = self.l1[node.gpu * self._gpms_per_gpu + node.gpm]
        slices[op.cta % len(slices)].fill(line, version, remote=remote)
        if self._tracing:
            self.tracer.fill("l1", node, line)

    def _l1_store(self, op: MemOp, line: int, version: int,
                  remote: bool) -> None:
        """Write-through store: the L1 keeps the written data."""
        node = op.node
        slices = self.l1[node.gpu * self._gpms_per_gpu + node.gpm]
        slices[op.cta % len(slices)].write(
            line, version, dirty=False, remote=remote
        )

    def _invalidate_l1s(self, node: NodeId, slice_index: int = None) -> int:
        """Flash-invalidate L1 slice(s) of a GPM (acquire semantics)."""
        flat = self.flat(node)
        slices = self.l1[flat]
        targets = slices if slice_index is None else [slices[slice_index]]
        dropped = 0
        for sl in targets:
            dropped += len(sl.invalidate_all())
        self.bulk_invs_per_gpm[flat] += len(targets)
        if self._tracing:
            self.tracer.bulk_invalidate(node, "l1", dropped)
        return dropped

    # ------------------------------------------------------------------
    # Introspection for tests
    # ------------------------------------------------------------------

    def l2_of(self, node: NodeId) -> SetAssociativeCache:
        """A GPM's L2 partition (test/introspection helper)."""
        return self.l2[self.flat(node)]

    def dram_of(self, node: NodeId) -> DramPartition:
        """A GPM's DRAM partition (test/introspection helper)."""
        return self.dram[self.flat(node)]

    def dir_of(self, node: NodeId) -> CoherenceDirectory:
        """A GPM's coherence directory (hardware protocols only)."""
        if not self.has_directory:
            raise AttributeError(f"{self.name} has no coherence directory")
        return self.dirs[self.flat(node)]

    def caches_holding(self, line: int) -> list[NodeId]:
        """All GPMs whose L2 currently holds a valid copy of ``line``."""
        return [
            self.node(i)
            for i, l2 in enumerate(self.l2)
            if l2.peek(line) is not None
        ]
