"""Protocol registry: name -> implementation.

The five registered names match the five configurations of Fig 8:

========== ================================================
noremote   No remote-GPU caching (normalization baseline)
sw         Non-hierarchical software coherence
hsw        Hierarchical software coherence
nhcc       Non-hierarchical hardware coherence (Section IV)
gpuvi      GPU-VI: NHCC + multi-copy-atomicity (Fig 2's HW baseline)
hmg        Hierarchical hardware coherence (Section V)
ideal      Idealized caching without coherence
========== ================================================
"""

from __future__ import annotations

from repro.core.gpuvi import GPUVIProtocol
from repro.core.hmg import HMGProtocol
from repro.core.ideal import IdealProtocol
from repro.core.nhcc import NHCCProtocol
from repro.core.noremote import NoRemoteCachingProtocol
from repro.core.protocol import CoherenceProtocol, TrafficSink
from repro.core.software import (
    HierarchicalSWProtocol,
    NonHierarchicalSWProtocol,
)
from repro.config import SystemConfig

PROTOCOLS: dict = {
    cls.name: cls
    for cls in (
        NoRemoteCachingProtocol,
        NonHierarchicalSWProtocol,
        HierarchicalSWProtocol,
        NHCCProtocol,
        GPUVIProtocol,
        HMGProtocol,
        IdealProtocol,
    )
}

#: The protocols plotted in Fig 8, in the paper's legend order.
FIGURE8_PROTOCOLS = ("sw", "nhcc", "hsw", "hmg", "ideal")

#: The subset plotted in Fig 2 (whose hardware baseline is GPU-VI —
#: the paper adopts the ack-free NHCC only from Fig 8 onward).
FIGURE2_PROTOCOLS = ("sw", "gpuvi", "ideal")


def protocol_names() -> list:
    """Registered protocol names, sorted."""
    return sorted(PROTOCOLS)


def make_protocol(name: str, cfg: SystemConfig, sink: TrafficSink = None,
                  placement: str = "first_touch") -> CoherenceProtocol:
    """Instantiate a protocol by registry name."""
    try:
        cls = PROTOCOLS[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; expected one of {protocol_names()}"
        ) from None
    return cls(cfg, sink=sink, placement=placement)
