"""Vectorized address → line/page/sector/home mapping.

Array twins of the scalar mapping functions used on the coherence hot
path — :mod:`repro.memsys.address` (line/page/sector arithmetic),
:meth:`repro.memsys.cache.SetAssociativeCache.set_index` /
:meth:`repro.core.directory.Directory.set_index` (the Fibonacci-hash
set spreaders), :func:`repro.memsys.page_table.home_gpm_of_sector`
(the sector → GPM spreader), and the three page-placement policies of
:class:`repro.memsys.page_table.PageTable`.

Every function here must stay bit-identical to its scalar twin: the
vectorized engine's equivalence gate relies on homes, set indices and
placement being *exact*, with only stateful quantities (hits,
evictions, sharer sets) carrying epoch-granularity tolerances.
"""

from __future__ import annotations

import numpy as np

#: 64-bit Fibonacci multiplier used by both cache and directory set
#: hashes (mirrors ``repro.memsys.cache``).
_FIB = 0x9E3779B97F4A7C15
_MASK64 = 0xFFFFFFFFFFFFFFFF


def lines_of(addresses: np.ndarray, line_bits: int) -> np.ndarray:
    """Byte addresses → cache line indices (int64)."""
    return (addresses >> np.uint64(line_bits)).astype(np.int64)


def pages_of_lines(lines: np.ndarray, lines_per_page: int) -> np.ndarray:
    """Line indices → page indices."""
    return lines // lines_per_page


def sectors_of_lines(lines: np.ndarray, lines_per_sector: int) -> np.ndarray:
    """Line indices → directory sector indices."""
    return lines // lines_per_sector


def home_gpm_of_sectors(sectors: np.ndarray, gpms_per_gpu: int) -> np.ndarray:
    """Sector → owning GPM within a GPU.

    Twin of ``repro.memsys.page_table.home_gpm_of_sector``:
    ``((s ^ (s >> 7) ^ (s >> 13)) & 0x7FFFFFFF) % gpms_per_gpu``.
    """
    s = sectors.astype(np.int64)
    mixed = (s ^ (s >> 7) ^ (s >> 13)) & 0x7FFFFFFF
    return mixed % gpms_per_gpu


def _fib_spread(values: np.ndarray) -> np.ndarray:
    """The shared ``(v * FIB) >> 33`` spreader, as unsigned 64-bit."""
    mixed = (values.astype(np.uint64) * np.uint64(_FIB)) & np.uint64(_MASK64)
    return mixed >> np.uint64(33)


def cache_set_of(lines: np.ndarray, num_sets: int) -> np.ndarray:
    """Line → L1/L2 set index (twin of ``SetAssociativeCache.set_index``:
    mask when ``num_sets`` is a power of two, modulo otherwise)."""
    spread = _fib_spread(lines)
    if num_sets & (num_sets - 1) == 0:
        return (spread & np.uint64(num_sets - 1)).astype(np.int64)
    return (spread % np.uint64(num_sets)).astype(np.int64)


def dir_set_of(sectors: np.ndarray, num_sets: int) -> np.ndarray:
    """Sector → directory set index (twin of ``Directory.set_index``:
    always modulo)."""
    return (_fib_spread(sectors) % np.uint64(num_sets)).astype(np.int64)


def first_touch_owners(pages: np.ndarray, flats: np.ndarray,
                       eligible: np.ndarray):
    """First-touch page placement over a whole trace.

    ``eligible`` masks the ops that would call ``sys_home`` in the
    scalar engines (everything except kernel boundaries, which carry no
    address).  The first eligible op touching a page places it on that
    op's node, exactly like the memoized scalar
    ``PageTable.sys_home``.

    Returns ``(upages, owners)``: sorted unique page indices and the
    flat GPM index owning each.  Look up per-op (or per-line) homes
    with :func:`owners_of_pages`.
    """
    cand = pages[eligible]
    upages, first = np.unique(cand, return_index=True)
    idx = np.flatnonzero(eligible)[first]
    return upages, flats[idx]


def owners_of_pages(upages: np.ndarray, owners: np.ndarray,
                    pages: np.ndarray) -> np.ndarray:
    """Map page indices through a ``(upages, owners)`` placement table.

    Pages absent from the table (only possible for address-less kernel
    boundary ops) map to flat GPM 0 — scalar code never asks for them.
    """
    idx = np.searchsorted(upages, pages)
    idx[idx >= upages.size] = 0
    hit = upages[idx] == pages
    out = owners[idx]
    out[~hit] = 0
    return out


def placement_owners(placement: str, pages: np.ndarray, flats: np.ndarray,
                     kinds: np.ndarray, kb_kind: int,
                     num_gpus: int, gpms_per_gpu: int,
                     eligible: np.ndarray = None):
    """Unique-page owner table for any of the three placement policies.

    Mirrors :class:`repro.memsys.page_table.PageTable`:

    * ``first_touch`` — page goes to the node of its first toucher;
    * ``interleave`` — ``gpu = page % num_gpus``,
      ``gpm = (page // num_gpus) % gpms_per_gpu``;
    * ``single:<g>`` — ``gpu = g``, ``gpm = page % gpms_per_gpu``.

    ``eligible`` overrides the default placing mask (everything but
    kernel boundaries) for protocols whose scalar twins satisfy some
    ops without ever consulting the page table.
    """
    if placement == "first_touch":
        if eligible is None:
            eligible = kinds != kb_kind
        return first_touch_owners(pages, flats, eligible)
    upages = np.unique(pages)
    if placement == "interleave":
        gpu = upages % num_gpus
        gpm = (upages // num_gpus) % gpms_per_gpu
    elif placement.startswith("single"):
        _, _, arg = placement.partition(":")
        gpu = np.full(upages.shape, int(arg) if arg else 0, np.int64)
        gpm = upages % gpms_per_gpu
    else:
        raise ValueError(f"unknown placement policy: {placement!r}")
    return upages, gpu * gpms_per_gpu + gpm
