"""Runtime coherence sanitizer: DESIGN.md §6 invariants, checked in-flight.

The offline property tests drive random op sequences through every
protocol and assert the §6 invariants after each op — thorough, but only
over the tiny sequences hypothesis can afford.  NHCC/HMG deliberately
drop invalidation acks and transient states, so their correctness rests
entirely on those invariants; this module checks them *against the
executing simulation*, sampled so long sweeps can leave it on:

* **scoped RAW** (invariant 3) — O(1) bookkeeping per op, checked on
  every load;
* **post-store exclusivity** (invariant 2) — checked on every
  store/atomic at the hardware protocols.  A copy of a line can only
  sit in the L1 slice of a node that issued an op on it (or a home
  node, which is exempt), so the check peeks just the tracked accessor
  set of the line, not every cache;
* **directory over-approximation** (invariant 1) — O(tracked lines x
  accessors) sweeps, run every ``interval`` ops over a bounded LRU
  window of recently-touched lines;
* **hierarchical sharer encoding** (invariant 4) — each sweep walks a
  rotating batch of directories, covering all of them across
  consecutive sweeps.

Violations raise :class:`CoherenceViolation` carrying the offending op,
its trace index, the cache line and a snapshot of the relevant
directory state — or are collected when ``collect=True`` so a sweep can
report every violation instead of dying on the first.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.directory import Sharer
from repro.core.types import MemOp, OpType, Scope

#: Protocols whose directories the structural invariants apply to.
DIRECTORY_PROTOCOLS = ("nhcc", "gpuvi", "hmg")


class CoherenceViolation(AssertionError):
    """A DESIGN.md §6 invariant failed during simulation."""

    def __init__(self, invariant: str, detail: str, *, op: MemOp = None,
                 op_index: int = None, line: int = None,
                 directory_state: str = None):
        self.invariant = invariant
        self.detail = detail
        self.op = op
        self.op_index = op_index
        self.line = line
        self.directory_state = directory_state
        parts = [f"[{invariant}] {detail}"]
        if op is not None:
            parts.append(f"op #{op_index}: {op}")
        if line is not None:
            parts.append(f"line {line}")
        if directory_state is not None:
            parts.append(f"directory state: {directory_state}")
        super().__init__("\n  ".join(parts))
        #: Set by the experiment runner before a violation crosses a
        #: process boundary: the (workload, protocol, engine, ...) cell
        #: that tripped it, for repro-file dumps in the parent.
        self.cell_info = None

    def __reduce__(self):
        # Exceptions pickle via (cls, args) by default, which would
        # drop every keyword field when a violation travels back from a
        # parallel sweep worker; rebuild through the full constructor
        # and restore the extras.
        return (
            _rebuild_violation,
            (self.invariant, self.detail, self.op, self.op_index,
             self.line, self.directory_state, self.cell_info),
        )


def _rebuild_violation(invariant, detail, op, op_index, line,
                       directory_state, cell_info):
    violation = CoherenceViolation(
        invariant, detail, op=op, op_index=op_index, line=line,
        directory_state=directory_state,
    )
    violation.cell_info = cell_info
    return violation


class CoherenceSanitizer:
    """Opt-in, sampled, bounded-overhead runtime invariant checker.

    One instance observes one run: the timing engines call
    :meth:`after_op` for every processed trace op.  State is bounded —
    the line window, release table and RAW expectations are all LRU
    dicts with hard caps — so overhead does not grow with trace length.
    """

    def __init__(self, interval: int = 512, max_tracked_lines: int = 256,
                 collect: bool = False):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.max_tracked_lines = max_tracked_lines
        self.collect = collect
        #: Total per-op checks performed (any kind).
        self.checks = 0
        #: Full directory sweeps performed.
        self.sweeps = 0
        #: Violations found (only populated when ``collect=True``).
        self.violations: list[CoherenceViolation] = []
        #: LRU of touched lines -> set of flat accessor node ids.
        self._lines: OrderedDict = OrderedDict()
        self._released: OrderedDict = OrderedDict()  # line -> (v, scope, node)
        self._expected: OrderedDict = OrderedDict()  # (flat,cta,line) -> v
        self._seen_version = 1
        self._dir_cursor = 0  # rotating start for encoding sweeps
        self._last_line = None  # most-recently-touched line (LRU fast path)

    # ------------------------------------------------------------------

    def _fail(self, violation: CoherenceViolation) -> None:
        if self.collect:
            self.violations.append(violation)
        else:
            raise violation

    @staticmethod
    def _bound(table: OrderedDict, cap: int) -> None:
        while len(table) > cap:
            table.popitem(last=False)

    def _track_line(self, line: int, flat: int) -> None:
        accessors = self._lines.get(line)
        if accessors is None:
            self._lines[line] = {flat}
            self._bound(self._lines, self.max_tracked_lines)
            self._last_line = line
        elif line == self._last_line:
            accessors.add(flat)
        else:
            accessors.add(flat)
            self._lines.move_to_end(line)
            self._last_line = line

    # ------------------------------------------------------------------

    def after_op(self, proto, op: MemOp, outcome, index: int) -> None:
        """Observe one processed op and check what it can violate."""
        self.checks += 1
        line = None
        if op.op != OpType.KERNEL_BOUNDARY:
            line = proto.amap.line_of(op.address)
            self._track_line(line, proto.flat(op.node))

        new_version = proto._next_version > self._seen_version
        self._seen_version = proto._next_version

        if op.op == OpType.RELEASE and new_version \
                and op.scope >= Scope.GPU:
            self._released[line] = (proto._next_version - 1, op.scope,
                                    op.node)
            self._bound(self._released, 4 * self.max_tracked_lines)

        if op.op == OpType.ACQUIRE and op.scope >= Scope.GPU:
            self._note_acquire(proto, op, line)

        if op.op in (OpType.LOAD, OpType.ACQUIRE):
            self._check_raw(proto, op, outcome, index, line)

        if (op.op in (OpType.STORE, OpType.ATOMIC)
                and proto.name in DIRECTORY_PROTOCOLS
                and not (op.op == OpType.ATOMIC and op.scope == Scope.CTA)):
            self._check_store_exclusivity(proto, op, index, line)

        if index % self.interval == 0 and proto.name in DIRECTORY_PROTOCOLS:
            self.sweeps += 1
            self._check_directory_coverage(proto, op, index)
            if proto.name == "hmg":
                self._check_sharer_encoding(proto, op, index)

    # ------------------------------------------------------------------
    # Invariant 3: scoped RAW
    # ------------------------------------------------------------------

    @staticmethod
    def _synchronizes(rel_scope: Scope, rel_node, acq_node,
                      acq_scope: Scope) -> bool:
        """True when a release/acquire pair orders the two threads
        under the scoped (HRF) model."""
        if rel_node.gpu == acq_node.gpu:
            return rel_scope >= Scope.GPU and acq_scope >= Scope.GPU
        return rel_scope == Scope.SYS and acq_scope == Scope.SYS

    def _note_acquire(self, proto, op: MemOp, line: int) -> None:
        rel = self._released.get(line)
        if rel is None:
            return
        version, rel_scope, rel_node = rel
        if self._synchronizes(rel_scope, rel_node, op.node, op.scope):
            key = (proto.flat(op.node), op.cta, line)
            self._expected[key] = version
            self._bound(self._expected, 4 * self.max_tracked_lines)

    def _check_raw(self, proto, op: MemOp, outcome, index: int,
                   line: int) -> None:
        expected = self._expected.get((proto.flat(op.node), op.cta, line))
        if expected is not None and outcome.version < expected:
            self._fail(CoherenceViolation(
                "scoped-raw",
                f"{op.node} cta{op.cta} read v{outcome.version} of a "
                f"line released at v{expected} and acquired since",
                op=op, op_index=index, line=line,
                directory_state=self._dir_snapshot(proto, line),
            ))

    # ------------------------------------------------------------------
    # Invariant 2: post-store exclusivity
    # ------------------------------------------------------------------

    def _check_store_exclusivity(self, proto, op: MemOp, index: int,
                                 line: int) -> None:
        owner = proto.sys_home(line, op.node)
        latest = proto._next_version - 1
        allowed = {op.node, owner,
                   proto.amap.gpu_home(line, op.node.gpu, owner)}
        for i in self._lines.get(line, ()):
            holder = proto.node(i)
            if holder in allowed:
                continue
            entry = proto.l2[i].peek(line)
            if entry is not None and entry.version < latest:
                self._fail(CoherenceViolation(
                    "post-store-exclusivity",
                    f"{holder} still holds v{entry.version} "
                    f"(latest v{latest}) after {op.op.name} by {op.node}",
                    op=op, op_index=index, line=line,
                    directory_state=self._dir_snapshot(proto, line),
                ))

    # ------------------------------------------------------------------
    # Invariant 1: directory over-approximation
    # ------------------------------------------------------------------

    def _check_directory_coverage(self, proto, op: MemOp,
                                  index: int) -> None:
        for line, accessors in self._lines.items():
            page = proto.amap.page_of_line(line)
            try:
                owner = proto.page_table.policy.lookup(page)
            except KeyError:
                continue
            sector = proto.amap.sector_of_line(line)
            for i in accessors:
                holder = proto.node(i)
                if holder == owner or proto.l2[i].peek(line) is None:
                    continue
                self._check_covered(proto, op, index, line, sector,
                                    holder, i, owner)

    def _check_covered(self, proto, op: MemOp, index: int, line: int,
                       sector: int, holder, flat_holder: int,
                       owner) -> None:
        def uncovered(where, missing):
            self._fail(CoherenceViolation(
                "directory-coverage",
                f"{holder} holds a valid copy but {where} directory "
                f"has {missing}",
                op=op, op_index=index, line=line,
                directory_state=self._dir_snapshot(proto, line),
            ))

        home_dir = proto.dirs[proto.flat(owner)]
        if proto.name in ("nhcc", "gpuvi"):
            entry = home_dir.lookup(sector, touch=False)
            if entry is None:
                uncovered(f"home {owner}", "no entry")
            elif Sharer.gpm(flat_holder) not in entry.sharers:
                uncovered(f"home {owner}",
                          f"no GPM{flat_holder} sharer ({entry!r})")
            return
        # HMG: hierarchical coverage.
        if holder.gpu == owner.gpu:
            entry = home_dir.lookup(sector, touch=False)
            if entry is None:
                uncovered(f"system home {owner}", "no entry")
            elif Sharer.gpm(holder.gpm) not in entry.sharers:
                uncovered(f"system home {owner}",
                          f"no GPM{holder.gpm} sharer ({entry!r})")
            return
        sys_entry = home_dir.lookup(sector, touch=False)
        if sys_entry is None:
            uncovered(f"system home {owner}", "no entry")
            return
        if Sharer.gpu(holder.gpu) not in sys_entry.sharers:
            uncovered(f"system home {owner}",
                      f"no GPU{holder.gpu} sharer ({sys_entry!r})")
            return
        ghome = proto.amap.gpu_home(line, holder.gpu, owner)
        if holder != ghome:
            gentry = proto.dirs[proto.flat(ghome)].lookup(sector,
                                                          touch=False)
            if gentry is None:
                uncovered(f"GPU home {ghome}", "no entry")
            elif Sharer.gpm(holder.gpm) not in gentry.sharers:
                uncovered(f"GPU home {ghome}",
                          f"no GPM{holder.gpm} sharer ({gentry!r})")

    # ------------------------------------------------------------------
    # Invariant 4: hierarchical sharer encoding
    # ------------------------------------------------------------------

    #: Directories examined per sharer-encoding sweep; the cursor
    #: rotates so consecutive sweeps cover the full set.
    DIRS_PER_SWEEP = 8

    def _check_sharer_encoding(self, proto, op: MemOp,
                               index: int) -> None:
        gpms = proto.cfg.gpms_per_gpu
        total = len(proto.dirs)
        batch = range(self._dir_cursor,
                      self._dir_cursor + min(self.DIRS_PER_SWEEP, total))
        self._dir_cursor = (self._dir_cursor
                            + min(self.DIRS_PER_SWEEP, total)) % max(total, 1)
        for i in batch:
            i %= total
            d = proto.dirs[i]
            here = proto.node(i)
            for entry in d.entries():
                for sharer in entry.sharers:
                    if sharer.is_gpm and not 0 <= sharer.index < gpms:
                        self._fail(CoherenceViolation(
                            "hierarchical-encoding",
                            f"directory at {here} records out-of-GPU "
                            f"GPM id {sharer.index} ({entry!r})",
                            op=op, op_index=index,
                        ))
                    elif sharer.is_gpu and sharer.index == here.gpu:
                        self._fail(CoherenceViolation(
                            "hierarchical-encoding",
                            f"directory at {here} records its own GPU "
                            f"as a peer sharer ({entry!r})",
                            op=op, op_index=index,
                        ))

    # ------------------------------------------------------------------

    @staticmethod
    def _dir_snapshot(proto, line: int) -> str:
        """Human-readable dump of every directory entry covering a line."""
        if not getattr(proto, "has_directory", False):
            return "(no directories)"
        sector = proto.amap.sector_of_line(line)
        parts = []
        for i, d in enumerate(proto.dirs):
            entry = d.lookup(sector, touch=False)
            if entry is not None:
                parts.append(f"{proto.node(i)}={entry!r}")
        return "; ".join(parts) if parts else "(no valid entries)"

    def summary(self) -> str:
        """One-line report of what was checked and found."""
        return (f"sanitizer: {self.checks} ops checked, "
                f"{self.sweeps} directory sweeps, "
                f"{len(self.violations)} violation(s) collected")
