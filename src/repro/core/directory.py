"""Set-associative coherence directory (Sections IV-A, V-A).

Each GPM attaches one directory to its L2 partition.  An entry covers a
*sector* of ``dir_lines_per_entry`` consecutive cache lines (4 in
Table II) and tracks the identity of every sharer together with a single
Valid bit — there are no transient states.

Sharers are hierarchical (Section V-A): an entry at a home node may mix

* ``Sharer.gpm(i)`` — GPM ``i`` *within the same GPU*, and
* ``Sharer.gpu(j)`` — peer GPU ``j`` as a whole (system home nodes never
  learn which GPM inside a peer GPU holds a copy).

For an M-GPM, N-GPU system an entry therefore tracks at most
``M + N - 2`` sharers, which is what Section VII-C's storage-cost
analysis assumes.  The flat NHCC protocol uses only GPM sharers, with
flat GPM indices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional


class SharerKind(enum.IntEnum):
    GPM = 0
    GPU = 1


@dataclass(frozen=True, order=True)
class Sharer:
    """One tracked sharer: a GPM (intra-GPU) or a whole peer GPU."""

    kind: SharerKind
    index: int

    @staticmethod
    def gpm(index: int) -> "Sharer":
        """A GPM sharer within the home node's own GPU."""
        return Sharer(SharerKind.GPM, index)

    @staticmethod
    def gpu(index: int) -> "Sharer":
        """A peer GPU tracked as a whole (Section V-A)."""
        return Sharer(SharerKind.GPU, index)

    @property
    def is_gpm(self) -> bool:
        return self.kind == SharerKind.GPM

    @property
    def is_gpu(self) -> bool:
        return self.kind == SharerKind.GPU

    def __str__(self) -> str:
        return f"{'GPM' if self.is_gpm else 'GPU'}{self.index}"


class DirectoryEntry:
    """One Valid directory entry: a sector and its sharer set."""

    __slots__ = ("sector", "sharers")

    def __init__(self, sector: int):
        self.sector = sector
        self.sharers: set[Sharer] = set()

    def add(self, sharer: Sharer) -> None:
        """Record a sharer (idempotent)."""
        self.sharers.add(sharer)

    def discard(self, sharer: Sharer) -> None:
        """Forget a sharer if present."""
        self.sharers.discard(sharer)

    def others(self, excluding: Sharer) -> set[Sharer]:
        """Every sharer except ``excluding``."""
        return self.sharers - {excluding}

    def __repr__(self) -> str:
        who = ", ".join(str(s) for s in sorted(self.sharers))
        return f"V:sector{self.sector}:[{who}]"


@dataclass
class DirectoryStats:
    lookups: int = 0
    allocations: int = 0
    evictions: int = 0
    evictions_with_sharers: int = 0

    @property
    def conflict_pressure(self) -> float:
        return self.evictions / self.allocations if self.allocations else 0.0


class CoherenceDirectory:
    """Set-associative sharer-tracking directory with LRU replacement.

    Only Valid entries are stored; Invalid is represented by absence, so
    the Table I ``I`` column corresponds to a missing entry.
    """

    def __init__(self, entries: int, ways: int, name: str = "dir"):
        if entries <= 0 or ways <= 0:
            raise ValueError("entries and ways must be positive")
        if entries % ways:
            raise ValueError("entries must be a multiple of ways")
        self.name = name
        self.ways = ways
        self.num_sets = entries // ways
        self._sets: list[dict[int, DirectoryEntry]] = [
            {} for _ in range(self.num_sets)
        ]
        self.stats = DirectoryStats()

    @property
    def capacity(self) -> int:
        return self.num_sets * self.ways

    def _set_for(self, sector: int) -> dict:
        # Hash the set index (see SetAssociativeCache._set_for): sector
        # streams are strided and would otherwise conflict pathologically.
        mixed = (sector * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        return self._sets[(mixed >> 33) % self.num_sets]

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def __contains__(self, sector: int) -> bool:
        return sector in self._set_for(sector)

    def entries(self) -> Iterator[DirectoryEntry]:
        """Iterate over all Valid entries (no particular order)."""
        for s in self._sets:
            yield from s.values()

    # ------------------------------------------------------------------

    def lookup(self, sector: int, touch: bool = True) -> Optional[DirectoryEntry]:
        """Find the Valid entry for a sector, if any (LRU-touching)."""
        self.stats.lookups += 1
        cset = self._set_for(sector)
        entry = cset.get(sector)
        if entry is not None and touch:
            del cset[sector]
            cset[sector] = entry
        return entry

    def allocate(
        self, sector: int
    ) -> tuple[DirectoryEntry, Optional[DirectoryEntry]]:
        """Get-or-create the entry for a sector.

        Returns ``(entry, victim)``.  ``victim`` is a displaced Valid
        entry whose sharers the caller must invalidate (Table I,
        "Replace Dir Entry": inv all sharers, -> I).
        """
        cset = self._set_for(sector)
        entry = cset.get(sector)
        if entry is not None:
            del cset[sector]
            cset[sector] = entry
            return entry, None
        victim = None
        if len(cset) >= self.ways:
            victim_sector = next(iter(cset))
            victim = cset.pop(victim_sector)
            self.stats.evictions += 1
            if victim.sharers:
                self.stats.evictions_with_sharers += 1
        entry = DirectoryEntry(sector)
        cset[sector] = entry
        self.stats.allocations += 1
        return entry, victim

    def invalidate(self, sector: int) -> Optional[DirectoryEntry]:
        """Transition a sector's entry to Invalid (drop it)."""
        return self._set_for(sector).pop(sector, None)

    def sharer_histogram(self) -> dict:
        """Distribution of sharer-set sizes over resident entries."""
        hist: dict[int, int] = {}
        for entry in self.entries():
            n = len(entry.sharers)
            hist[n] = hist.get(n, 0) + 1
        return hist
