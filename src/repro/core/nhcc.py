"""NHCC — the non-hierarchical hardware coherence protocol (Section IV).

NHCC treats the whole machine as one flat collection of GPMs: each line
has a single home node (the system home), whose directory tracks every
sharing GPM by flat index.  The protocol follows Table I exactly:

* two stable states (Valid / absent-as-Invalid), no transient states;
* invalidations carry no acknowledgments;
* acknowledgments exist only for release fences;
* the directory is allocated by remote loads/stores and torn down by
  local stores and capacity evictions.
"""

from __future__ import annotations

from repro.core.directory import DirectoryEntry, Sharer
from repro.core.protocol import AccessOutcome, CoherenceProtocol
from repro.core.types import MemOp, MsgType, NodeId, Scope


class NHCCProtocol(CoherenceProtocol):
    """Flat (non-hierarchical) hardware VI-like coherence."""

    name = "nhcc"
    label = "Non-Hierarchical HW Coherence"
    has_directory = True

    # ------------------------------------------------------------------
    # Directory helpers (flat sharer ids)
    # ------------------------------------------------------------------

    def _sharer_of(self, node: NodeId) -> Sharer:
        return Sharer.gpm(self.flat(node))

    def _node_of_sharer(self, sharer: Sharer) -> NodeId:
        return self.node(sharer.index)

    def _drop_sector_lines(self, node: NodeId, sector: int) -> int:
        """Invalidate every line of a sector in a GPM's L2."""
        l2 = self.l2[self.flat(node)]
        dropped = 0
        for line in self.amap.lines_in_sector(sector):
            if l2.invalidate(line) is not None:
                dropped += 1
        return dropped

    def _inv_sharers(self, home: NodeId, entry: DirectoryEntry,
                     keep: Sharer = None, cause: str = "store") -> int:
        """Send invalidations to every sharer except ``keep``.

        Invalidations propagate in the background with no acks
        (Section IV); functionally they take effect immediately.
        Returns the number of cache lines actually dropped.
        """
        dropped = 0
        fanned = 0
        for sharer in sorted(entry.sharers):
            if keep is not None and sharer == keep:
                continue
            target = self._node_of_sharer(sharer)
            if target == home:
                continue
            self.send(MsgType.INVALIDATION, home, target, entry.sector)
            dropped += self._drop_sector_lines(target, entry.sector)
            fanned += 1
        if cause == "store":
            self.stats.lines_inv_by_store += dropped
        else:
            self.stats.lines_inv_by_dir_evict += dropped
        if self._tracing and fanned:
            self.tracer.fanout(home, fanned, dropped, cause)
        return dropped

    def _dir_allocate(self, home: NodeId, sector: int) -> DirectoryEntry:
        """Allocate (or touch) a directory entry, handling the Table I
        "Replace Dir Entry" transition for the displaced victim."""
        directory = self.dirs[self.flat(home)]
        entry, victim = directory.allocate(sector)
        if victim is not None and victim.sharers:
            self.stats.dir_evictions += 1
            self._inv_sharers(home, victim, cause="evict")
        return entry

    def _handle_l2_victim(self, node: NodeId, victim) -> None:
        super()._handle_l2_victim(node, victim)
        if victim is None or victim.dirty:
            return
        if self.cfg.downgrade_on_clean_eviction and victim.remote:
            home = self.sys_home(victim.line, node)
            if home == node:
                return
            self.send(MsgType.DOWNGRADE, node, home, victim.line)
            entry = self.dirs[self.flat(home)].lookup(
                self.amap.sector_of_line(victim.line), touch=False
            )
            if entry is not None:
                still_held = any(
                    self.l2[self.flat(node)].peek(ln) is not None
                    for ln in self.amap.lines_in_sector(entry.sector)
                )
                if not still_held:
                    entry.discard(self._sharer_of(node))

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------

    def _load(self, op: MemOp) -> AccessOutcome:
        line = op.address >> self._line_bits
        home = self.sys_home(line, op.node)
        lat = self._lat
        latency = self._l1_hit_lat

        if op.scope is Scope.CTA:
            node = op.node
            slices = self.l1[node.gpu * self._gpms_per_gpu + node.gpm]
            hit = slices[op.cta % len(slices)].lookup(line)
            if hit is not None:
                return AccessOutcome(hit.version, latency, hit_level="l1")

        node = op.node
        nflat = node.gpu * self._gpms_per_gpu + node.gpm
        local = self.l2[nflat]
        self.l2_bytes_per_gpm[nflat] += self._line_size
        latency += self._l2_hit_lat
        # Scoped (> .cta) loads must miss everywhere but the home node,
        # which is the flat protocol's only coherence point.
        may_hit_local = op.scope == Scope.CTA or op.node == home
        entry = local.lookup(line) if may_hit_local else None
        if not may_hit_local:
            local.stats.misses += 1
        if entry is not None:
            self._l1_fill(op, line, entry.version, remote=home != op.node)
            return AccessOutcome(entry.version, latency, hit_level="local_l2")

        if op.node == home:
            version = self.dram[self.flat(home)].read(line)
            latency += lat.dram_access
            victim = local.fill(line, version, remote=False)
            self._handle_l2_victim(op.node, victim)
            self._l1_fill(op, line, version, remote=False)
            return AccessOutcome(version, latency, hit_level="dram")

        # Remote request to the home node.
        if home.gpu != op.node.gpu:
            self.stats.remote_gpu_loads += 1
        self.send(MsgType.LOAD_REQ, op.node, home, line)
        latency += 2 * self.hop_latency(op.node, home)
        home_l2 = self.l2[self.flat(home)]
        self._l2_touch(home, self._line_size)
        latency += self._l2_hit_lat
        home_entry = home_l2.lookup(line)
        if home_entry is None:
            version = self.dram[self.flat(home)].read(line)
            latency += lat.dram_access
            victim = home_l2.fill(line, version, remote=False)
            self._handle_l2_victim(home, victim)
            level = "dram"
        else:
            version = home_entry.version
            level = "home_l2"

        # Table I: remote load — add sender to sharers, -> V.
        entry = self._dir_allocate(home, self.amap.sector_of_line(line))
        entry.add(self._sharer_of(op.node))

        self.send(MsgType.DATA_RESP, home, op.node, line)
        victim = local.fill(line, version, remote=True)
        self._handle_l2_victim(op.node, victim)
        self._l2_touch(op.node, self._line_size)
        self._l1_fill(op, line, version, remote=True)
        return AccessOutcome(version, latency, hit_level=level)

    # ------------------------------------------------------------------
    # Stores and atomics
    # ------------------------------------------------------------------

    def _store(self, op: MemOp) -> AccessOutcome:
        line = op.address >> self._line_bits
        home = self.sys_home(line, op.node)
        version = self._new_version()
        lat = self._lat
        latency = self._l1_hit_lat

        self._l1_store(op, line, version, remote=home != op.node)
        node = op.node
        nflat = node.gpu * self._gpms_per_gpu + node.gpm
        local = self.l2[nflat]
        self.l2_bytes_per_gpm[nflat] += min(op.size, self._line_size)
        victim = local.write(line, version, dirty=op.node == home,
                             remote=home != op.node)
        self._handle_l2_victim(op.node, victim)
        latency += self._l2_hit_lat

        sector = self.amap.sector_of_line(line)
        directory = self.dirs[self.flat(home)]
        if op.node == home:
            # Table I, local store in V: inv all sharers, -> I.
            entry = directory.lookup(sector, touch=False)
            if entry is not None:
                if entry.sharers:
                    self.stats.stores_on_shared += 1
                    self._inv_sharers(home, entry, cause="store")
                directory.invalidate(sector)
        else:
            # Write-through travels to the home node.
            payload = min(op.size, self._line_size)
            self.send(MsgType.STORE_REQ, op.node, home, line, payload=payload)
            latency += self.hop_latency(op.node, home)
            self._home_store(home, line, version, payload)
            # Table I, remote store: add sender, inv other sharers.
            entry = self._dir_allocate(home, sector)
            me = self._sharer_of(op.node)
            if entry.others(me):
                self.stats.stores_on_shared += 1
                self._inv_sharers(home, entry, keep=me, cause="store")
            entry.sharers = {me}
        return AccessOutcome(0, latency)

    def _atomic(self, op: MemOp) -> AccessOutcome:
        line = op.address >> self._line_bits
        if op.scope == Scope.CTA:
            # .cta-scope synchronization is performed in the L1.
            version = self._new_version()
            self._l1_store(op, line, version, remote=False)
            return AccessOutcome(version, self._l1_hit_lat,
                                 exposed=True, hit_level="l1")
        # .gpu and .sys atomics both execute at the flat home node.
        home = self.sys_home(line, op.node)
        version = self._new_version()
        latency = self._l2_hit_lat
        sector = self.amap.sector_of_line(line)
        if op.node != home:
            self.send(MsgType.ATOMIC_REQ, op.node, home, line, payload=16)
            latency += self.rtt(op.node, home)
        self._home_store(home, line, version, self._line_size)
        directory = self.dirs[self.flat(home)]
        if op.node == home:
            entry = directory.lookup(sector, touch=False)
            if entry is not None:
                if entry.sharers:
                    self.stats.stores_on_shared += 1
                    self._inv_sharers(home, entry, cause="store")
                directory.invalidate(sector)
        else:
            entry = self._dir_allocate(home, sector)
            me = self._sharer_of(op.node)
            if entry.others(me):
                self.stats.stores_on_shared += 1
                self._inv_sharers(home, entry, keep=me, cause="store")
            entry.sharers = {me}
            self.send(MsgType.ATOMIC_RESP, home, op.node, line)
            # The result is cached by the requester as a store would be.
            victim = self.l2[self.flat(op.node)].write(
                line, version, remote=True
            )
            self._handle_l2_victim(op.node, victim)
            self._l2_touch(op.node, self._line_size)
        return AccessOutcome(version, latency, exposed=False)

    # ------------------------------------------------------------------
    # Synchronization
    # ------------------------------------------------------------------

    def _acquire(self, op: MemOp) -> AccessOutcome:
        if op.scope == Scope.CTA:
            # Satisfied within the SM's L1 — no action needed.
            out = self._load(op)
            out.exposed = True
            return out
        # Acquires > .cta invalidate the local L1 and nothing more:
        # all L2 levels are hardware-coherent (Section IV, "Acquire").
        slices = self.l1[self.flat(op.node)]
        slice_index = op.cta % len(slices)
        self.stats.lines_inv_by_acquire += self._invalidate_l1s(
            op.node, slice_index
        )
        out = self._load(op)
        out.latency += self.cfg.timing.bulk_invalidate_cycles
        out.exposed = True
        return out

    def _release_fence(self, op: MemOp) -> float:
        """Propagate a release fence to every remote L2 and collect the
        acknowledgments (Section IV, "Release")."""
        farthest = 0
        for other in self.all_nodes():
            if other == op.node:
                continue
            self.send(MsgType.RELEASE_FENCE, op.node, other)
            self.send(MsgType.RELEASE_ACK, other, op.node)
            farthest = max(farthest, self.rtt(op.node, other))
        return float(farthest)

    def _release(self, op: MemOp) -> AccessOutcome:
        out = self._store(op)
        if op.scope == Scope.CTA:
            out.exposed = True
            return out
        fence_latency = self._release_fence(op)
        return AccessOutcome(0, out.latency + fence_latency, exposed=True)

    def _kernel_boundary(self, op: MemOp) -> AccessOutcome:
        # Implicit .sys release + acquire: flush fence plus full L1
        # invalidation; the hardware-coherent L2s are left intact.
        fence_latency = self._release_fence(
            op.with_scope(Scope.SYS)
        )
        self.stats.lines_inv_by_acquire += self._invalidate_l1s(op.node)
        latency = fence_latency + self.cfg.timing.bulk_invalidate_cycles
        return AccessOutcome(0, latency, exposed=True)
