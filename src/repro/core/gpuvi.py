"""GPU-VI — the prior-work hardware baseline (Singh et al., HPCA 2013).

GPU-VI predates scoped memory models and enforces
**multi-copy-atomicity** (Section III-B): a store to a shared line may
not complete until every sharer has acknowledged its invalidation.  The
real protocol hides part of that latency behind transient states (3 in
the L1 and 12 in the L2, 65 extra transitions); in a multi-GPU machine
the round trips it must hide are an order of magnitude longer, which is
precisely the pressure HMG sidesteps by dropping the requirement.

This model extends NHCC (the two share the VI state machine and home
node organization) with the MCA costs the paper calls out:

* every invalidation is acknowledged (``INV_ACK`` traffic), and
* a store that invalidates sharers is *exposed* for the full
  requester -> home -> farthest-sharer -> home -> requester round trip,
  discounted by the same latency-tolerance factor as other exposed ops
  (standing in for the transient-state machinery's partial hiding).

Used as Fig 2's non-hierarchical hardware protocol and by the ``mca``
experiment, which measures what multi-copy-atomicity costs as the
machine grows.
"""

from __future__ import annotations

from repro.core.directory import DirectoryEntry, Sharer
from repro.core.nhcc import NHCCProtocol
from repro.core.protocol import AccessOutcome
from repro.core.types import MemOp, MsgType, NodeId


class GPUVIProtocol(NHCCProtocol):
    """Flat VI coherence with multi-copy-atomic write semantics."""

    name = "gpuvi"
    label = "GPU-VI (multi-copy-atomic)"
    has_directory = True

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: Exposed ack round-trip latency accrued by the op in flight.
        self._pending_ack_latency = 0.0

    # ------------------------------------------------------------------

    def _inv_sharers(self, home: NodeId, entry: DirectoryEntry,
                     keep: Sharer = None, cause: str = "store") -> int:
        """As NHCC, but every invalidation is acknowledged and the
        farthest acknowledgment round trip is charged to the op."""
        dropped = super()._inv_sharers(home, entry, keep=keep, cause=cause)
        farthest = 0.0
        for sharer in sorted(entry.sharers):
            if keep is not None and sharer == keep:
                continue
            target = self._node_of_sharer(sharer)
            if target == home:
                continue
            self.send(MsgType.INV_ACK, target, home)
            farthest = max(farthest, float(self.rtt(home, target)))
        self._pending_ack_latency = max(self._pending_ack_latency,
                                        farthest)
        if self._tracing and farthest:
            # Multi-copy-atomicity made visible: the store at ``home``
            # cannot complete until this ack round trip closes.
            self.tracer.instant("mca_ack_wait", home,
                                {"farthest_rtt": farthest, "cause": cause})
        return dropped

    def _take_ack_latency(self) -> float:
        latency, self._pending_ack_latency = self._pending_ack_latency, 0.0
        return latency

    # ------------------------------------------------------------------

    def _store(self, op: MemOp) -> AccessOutcome:
        self._pending_ack_latency = 0.0
        out = super()._store(op)
        ack = self._take_ack_latency()
        if ack:
            # Multi-copy-atomicity: the write completes only after all
            # acks arrive.  Only the acknowledgment wait is exposed —
            # the write-through itself remains fire-and-forget — and
            # the transient-state machinery hides most of it.
            hidden = ack / self.cfg.timing.mca_transient_hiding
            return AccessOutcome(out.version, hidden, exposed=True,
                                 hit_level=out.hit_level)
        return out

    def _atomic(self, op: MemOp) -> AccessOutcome:
        self._pending_ack_latency = 0.0
        out = super()._atomic(op)
        ack = self._take_ack_latency()
        if ack:
            hidden = ack / self.cfg.timing.mca_transient_hiding
            out.latency += hidden
            out.exposed = True
        return out
