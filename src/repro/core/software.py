"""Software coherence protocols (the paper's two SW baselines).

Both variants are "conventional software coherence with scopes and
bulk invalidation of caches" (Section VI): there is no directory and no
invalidation traffic; instead, load-acquires flash-invalidate every
possibly-stale line between the issuing SM and the home node for the
scope in question, and store-releases stall until pending write-throughs
drain.

* :class:`NonHierarchicalSWProtocol` treats the machine as one flat GPU
  of ``N x M`` GPMs.  Any L2 may cache any data; a ``>= .gpu``-scoped
  acquire invalidates the issuing SM's L1 plus every remotely-homed line
  in the GPM-local L2 (".sys-scoped loads need not invalidate L2 caches
  in other GPMs of the same GPU" — Section VI).
* :class:`HierarchicalSWProtocol` additionally routes requests through
  the per-GPU home node so intra-GPU locality is captured; ``.gpu``
  acquires invalidate only lines whose GPU home is another GPM, and
  ``.sys`` acquires invalidate peer-GPU-homed lines in *all* L2 caches
  of the issuing GPU.
"""

from __future__ import annotations

from repro.core.protocol import AccessOutcome, CoherenceProtocol
from repro.core.types import MemOp, MsgType, NodeId, Scope


class _SoftwareProtocolBase(CoherenceProtocol):
    """Machinery shared by both software variants."""

    has_directory = False

    # -- bulk invalidation ------------------------------------------------

    def _owner_of_line(self, line: int, toucher: NodeId) -> NodeId:
        # sys_home is the same computation, memoized — the bulk
        # invalidation predicates below call this once per resident
        # line on every acquire.
        return self.sys_home(line, toucher)

    def _gpu_home_of_line(self, line: int, node: NodeId) -> NodeId:
        owner = self._owner_of_line(line, node)
        return self.amap.gpu_home(line, node.gpu, owner)

    def _bulk_invalidate_l2(self, node: NodeId, predicate) -> int:
        """Flash-invalidate matching lines in one GPM's L2."""
        dropped = self.l2[self.flat(node)].invalidate_where(predicate)
        self.bulk_invs_per_gpm[self.flat(node)] += 1
        self.stats.lines_inv_by_acquire += len(dropped)
        if self._tracing:
            self.tracer.bulk_invalidate(node, "l2", len(dropped))
        return len(dropped)

    # -- releases ----------------------------------------------------------

    def _release_stall(self, op: MemOp) -> float:
        """Cycles a release stalls waiting for write-throughs to drain.

        Software releases carry no fence messages; the issuing L2 simply
        waits until the home node for the scope has acknowledged all
        pending writes (Section VI: "Store-release operations stall
        subsequent operations until the home node for the scope in
        question clears all pending writes").
        """
        raise NotImplementedError

    def _release(self, op: MemOp) -> AccessOutcome:
        out = self._store(op)
        if op.scope == Scope.CTA:
            out.exposed = True
            return out
        return AccessOutcome(0, out.latency + self._release_stall(op),
                             exposed=True)

    def _kernel_boundary(self, op: MemOp) -> AccessOutcome:
        stall = self._release_stall(op.with_scope(Scope.SYS))
        self.stats.lines_inv_by_acquire += self._invalidate_l1s(op.node)
        dropped = self._boundary_l2_invalidate(op.node)
        latency = stall + self.cfg.timing.bulk_invalidate_cycles
        return AccessOutcome(0, latency, exposed=True)

    def _boundary_l2_invalidate(self, node: NodeId) -> int:
        raise NotImplementedError


class NonHierarchicalSWProtocol(_SoftwareProtocolBase):
    """Flat scoped software coherence over N x M GPMs."""

    name = "sw"
    label = "Non-Hierarchical SW Coherence"

    def _home(self, line: int, toucher: NodeId) -> NodeId:
        return self.sys_home(line, toucher)

    # -- loads ---------------------------------------------------------

    def _load(self, op: MemOp) -> AccessOutcome:
        line = op.address >> self._line_bits
        home = self._home(line, op.node)
        lat = self._lat
        latency = self._l1_hit_lat

        if op.scope is Scope.CTA:
            node = op.node
            slices = self.l1[node.gpu * self._gpms_per_gpu + node.gpm]
            hit = slices[op.cta % len(slices)].lookup(line)
            if hit is not None:
                return AccessOutcome(hit.version, latency, hit_level="l1")

        node = op.node
        nflat = node.gpu * self._gpms_per_gpu + node.gpm
        local = self.l2[nflat]
        self.l2_bytes_per_gpm[nflat] += self._line_size
        latency += self._l2_hit_lat
        may_hit_local = op.scope == Scope.CTA or op.node == home
        entry = local.lookup(line) if may_hit_local else None
        if not may_hit_local:
            local.stats.misses += 1
        if entry is not None:
            self._l1_fill(op, line, entry.version, remote=home != op.node)
            return AccessOutcome(entry.version, latency,
                                 hit_level="local_l2")

        if op.node == home:
            version = self.dram[self.flat(home)].read(line)
            latency += lat.dram_access
            victim = local.fill(line, version, remote=False)
            self._handle_l2_victim(op.node, victim)
            self._l1_fill(op, line, version, remote=False)
            return AccessOutcome(version, latency, hit_level="dram")

        if home.gpu != op.node.gpu:
            self.stats.remote_gpu_loads += 1
        self.send(MsgType.LOAD_REQ, op.node, home, line)
        latency += 2 * self.hop_latency(op.node, home)
        home_l2 = self.l2[self.flat(home)]
        self._l2_touch(home, self._line_size)
        latency += self._l2_hit_lat
        hentry = home_l2.lookup(line)
        if hentry is None:
            version = self.dram[self.flat(home)].read(line)
            latency += lat.dram_access
            hvictim = home_l2.fill(line, version, remote=False)
            self._handle_l2_victim(home, hvictim)
            level = "dram"
        else:
            version = hentry.version
            level = "home_l2"
        self.send(MsgType.DATA_RESP, home, op.node, line)
        victim = local.fill(line, version, remote=True)
        self._handle_l2_victim(op.node, victim)
        self._l1_fill(op, line, version, remote=True)
        return AccessOutcome(version, latency, hit_level=level)

    # -- stores ----------------------------------------------------------

    def _store(self, op: MemOp) -> AccessOutcome:
        line = op.address >> self._line_bits
        home = self._home(line, op.node)
        version = self._new_version()
        payload = min(op.size, self._line_size)
        lat = self._lat
        latency = self._l1_hit_lat + self._l2_hit_lat

        self._l1_store(op, line, version, remote=home != op.node)
        node = op.node
        nflat = node.gpu * self._gpms_per_gpu + node.gpm
        local = self.l2[nflat]
        self.l2_bytes_per_gpm[nflat] += payload
        victim = local.write(line, version, dirty=op.node == home,
                             remote=home != op.node)
        self._handle_l2_victim(op.node, victim)

        if op.node != home:
            self.send(MsgType.STORE_REQ, op.node, home, line, payload=payload)
            latency += self.hop_latency(op.node, home)
            self._home_store(home, line, version, payload)
        return AccessOutcome(0, latency)

    def _atomic(self, op: MemOp) -> AccessOutcome:
        line = op.address >> self._line_bits
        if op.scope == Scope.CTA:
            version = self._new_version()
            self._l1_store(op, line, version, remote=False)
            return AccessOutcome(version, self._l1_hit_lat,
                                 exposed=True, hit_level="l1")
        # Flat software coherence performs every scoped atomic at the
        # system home node — it has no closer coherence point.
        home = self._home(line, op.node)
        version = self._new_version()
        latency = self._l2_hit_lat
        if op.node != home:
            self.send(MsgType.ATOMIC_REQ, op.node, home, line, payload=16)
            self.send(MsgType.ATOMIC_RESP, home, op.node, line)
            latency += self.rtt(op.node, home)
        self._home_store(home, line, version, self._line_size)
        return AccessOutcome(version, latency, exposed=False)

    # -- synchronization ----------------------------------------------

    def _acquire(self, op: MemOp) -> AccessOutcome:
        if op.scope == Scope.CTA:
            out = self._load(op)
            out.exposed = True
            return out
        slices = self.l1[self.flat(op.node)]
        self.stats.lines_inv_by_acquire += self._invalidate_l1s(
            op.node, op.cta % len(slices)
        )
        # Bulk-invalidate every remotely-homed line in the local L2 —
        # the same action for .gpu and .sys in the flat protocol.
        self._bulk_invalidate_l2(
            op.node, lambda entry: entry.remote
        )
        out = self._load(op)
        out.latency += self.cfg.timing.bulk_invalidate_cycles
        out.exposed = True
        return out

    def _release_stall(self, op: MemOp) -> float:
        # Flat view: pending writes may target any GPM in the system.
        if self.cfg.num_gpus > 1:
            return 2.0 * self.cfg.latency.inter_gpu_hop
        return 2.0 * self.cfg.latency.inter_gpm_hop

    def _boundary_l2_invalidate(self, node: NodeId) -> int:
        return self._bulk_invalidate_l2(node, lambda entry: entry.remote)


class HierarchicalSWProtocol(_SoftwareProtocolBase):
    """Scoped software coherence with hierarchical request routing."""

    name = "hsw"
    label = "Hierarchical SW Coherence"

    def _homes(self, line: int, node: NodeId):
        return self.homes(line, node)

    def _may_hit(self, cache_node: NodeId, op: MemOp, ghome: NodeId,
                 syshome: NodeId) -> bool:
        if op.scope == Scope.CTA:
            return True
        if op.scope == Scope.GPU:
            return cache_node in (ghome, syshome)
        return cache_node == syshome

    # -- loads ---------------------------------------------------------

    def _load(self, op: MemOp) -> AccessOutcome:
        line = op.address >> self._line_bits
        ghome, syshome = self.homes(line, op.node)
        lat = self._lat
        latency = self._l1_hit_lat

        if op.scope is Scope.CTA:
            node = op.node
            slices = self.l1[node.gpu * self._gpms_per_gpu + node.gpm]
            hit = slices[op.cta % len(slices)].lookup(line)
            if hit is not None:
                return AccessOutcome(hit.version, latency, hit_level="l1")

        node = op.node
        nflat = node.gpu * self._gpms_per_gpu + node.gpm
        local = self.l2[nflat]
        self.l2_bytes_per_gpm[nflat] += self._line_size
        latency += self._l2_hit_lat
        if self._may_hit(op.node, op, ghome, syshome):
            entry = local.lookup(line)
        else:
            entry = None
            local.stats.misses += 1
        if entry is not None:
            self._l1_fill(op, line, entry.version, remote=op.node != syshome)
            return AccessOutcome(entry.version, latency,
                                 hit_level="local_l2")

        if op.node == syshome:
            version = self.dram[self.flat(syshome)].read(line)
            latency += lat.dram_access
            victim = local.fill(line, version, remote=False)
            self._handle_l2_victim(op.node, victim)
            self._l1_fill(op, line, version, remote=False)
            return AccessOutcome(version, latency, hit_level="dram")

        version = None
        level = "dram"
        if op.node != ghome:
            self.send(MsgType.LOAD_REQ, op.node, ghome, line)
            latency += 2 * self.hop_latency(op.node, ghome)
            self._l2_touch(ghome, self._line_size)
            latency += self._l2_hit_lat
            gl2 = self.l2[self.flat(ghome)]
            if self._may_hit(ghome, op, ghome, syshome):
                gentry = gl2.lookup(line)
            else:
                gentry = None
                gl2.stats.misses += 1
            if gentry is not None:
                version = gentry.version
                level = "gpu_home" if ghome != syshome else "sys_home"

        if version is None and ghome != syshome:
            self.stats.remote_gpu_loads += 1
            self.send(MsgType.LOAD_REQ, ghome, syshome, line)
            latency += 2 * self.hop_latency(ghome, syshome)
            self._l2_touch(syshome, self._line_size)
            latency += self._l2_hit_lat
            sentry = self.l2[self.flat(syshome)].lookup(line)
            if sentry is not None:
                version = sentry.version
                level = "sys_home"
            else:
                version = self.dram[self.flat(syshome)].read(line)
                latency += lat.dram_access
                svictim = self.l2[self.flat(syshome)].fill(
                    line, version, remote=False
                )
                self._handle_l2_victim(syshome, svictim)
            self.send(MsgType.DATA_RESP, syshome, ghome, line)
            if op.node != ghome:
                gvictim = self.l2[self.flat(ghome)].fill(
                    line, version, remote=True
                )
                self._handle_l2_victim(ghome, gvictim)
                self._l2_touch(ghome, self._line_size)
        elif version is None:
            version = self.dram[self.flat(syshome)].read(line)
            latency += lat.dram_access
            svictim = self.l2[self.flat(syshome)].fill(
                line, version, remote=False
            )
            self._handle_l2_victim(syshome, svictim)

        if op.node != ghome:
            self.send(MsgType.DATA_RESP, ghome, op.node, line)
        victim = local.fill(line, version, remote=True)
        self._handle_l2_victim(op.node, victim)
        self._l1_fill(op, line, version, remote=True)
        return AccessOutcome(version, latency, hit_level=level)

    # -- stores ----------------------------------------------------------

    def _store(self, op: MemOp) -> AccessOutcome:
        line = op.address >> self._line_bits
        ghome, syshome = self.homes(line, op.node)
        version = self._new_version()
        payload = min(op.size, self._line_size)
        lat = self._lat
        latency = self._l1_hit_lat + self._l2_hit_lat

        self._l1_store(op, line, version, remote=op.node != syshome)
        node = op.node
        nflat = node.gpu * self._gpms_per_gpu + node.gpm
        local = self.l2[nflat]
        self.l2_bytes_per_gpm[nflat] += payload
        victim = local.write(line, version, dirty=op.node == syshome,
                             remote=op.node != syshome)
        self._handle_l2_victim(op.node, victim)

        if op.node != ghome:
            self.send(MsgType.STORE_REQ, op.node, ghome, line, payload=payload)
            latency += self.hop_latency(op.node, ghome)
            gl2 = self.l2[self.flat(ghome)]
            self._l2_touch(ghome, payload)
            gvictim = gl2.write(line, version, dirty=ghome == syshome,
                                remote=ghome != syshome)
            self._handle_l2_victim(ghome, gvictim)
        if ghome != syshome:
            self.send(MsgType.STORE_REQ, ghome, syshome, line, payload=payload)
            latency += self.hop_latency(ghome, syshome)
            self._home_store(syshome, line, version, payload)
        return AccessOutcome(0, latency)

    def _atomic(self, op: MemOp) -> AccessOutcome:
        line = op.address >> self._line_bits
        if op.scope == Scope.CTA:
            version = self._new_version()
            self._l1_store(op, line, version, remote=False)
            return AccessOutcome(version, self._l1_hit_lat,
                                 exposed=True, hit_level="l1")
        ghome, syshome = self.homes(line, op.node)
        # Hierarchical software coherence performs the atomic at the
        # home node for its scope: the GPU home is the .gpu coherence
        # point because all stores write through it.
        target = ghome if op.scope == Scope.GPU else syshome
        out = self._store(op)
        if op.node != target:
            self.send(MsgType.ATOMIC_RESP, target, op.node, line)
        latency = self._l2_hit_lat + self.rtt(op.node, target)
        return AccessOutcome(self._next_version - 1, latency, exposed=False)

    # -- synchronization ----------------------------------------------

    def _acquire(self, op: MemOp) -> AccessOutcome:
        if op.scope == Scope.CTA:
            out = self._load(op)
            out.exposed = True
            return out
        slices = self.l1[self.flat(op.node)]
        self.stats.lines_inv_by_acquire += self._invalidate_l1s(
            op.node, op.cta % len(slices)
        )
        if op.scope == Scope.GPU:
            # Drop lines whose GPU home is another GPM of this GPU.
            self._bulk_invalidate_l2(
                op.node,
                lambda entry: self._gpu_home_of_line(entry.line, op.node)
                != op.node,
            )
        else:
            # .sys: drop peer-GPU-homed lines in every L2 of this GPU,
            # plus (in the issuing GPM) lines GPU-homed elsewhere.
            gpu = op.node.gpu
            for other_gpm in range(self.cfg.gpms_per_gpu):
                target = NodeId(gpu, other_gpm)

                def stale(entry, target=target):
                    owner = self._owner_of_line(entry.line, target)
                    if owner.gpu != gpu:
                        return True
                    return (
                        target == op.node
                        and self._gpu_home_of_line(entry.line, op.node)
                        != op.node
                    )

                self._bulk_invalidate_l2(target, stale)
        out = self._load(op)
        out.latency += self.cfg.timing.bulk_invalidate_cycles
        out.exposed = True
        return out

    def _release_stall(self, op: MemOp) -> float:
        if op.scope == Scope.GPU or self.cfg.num_gpus == 1:
            return 2.0 * self.cfg.latency.inter_gpm_hop
        return 2.0 * self.cfg.latency.inter_gpu_hop

    def _boundary_l2_invalidate(self, node: NodeId) -> int:
        def stale(entry):
            # A .sys boundary must drop (a) peer-GPU-owned lines — even
            # at their designated GPU home, since peer-GPU writers make
            # them stale — and (b) lines GPU-homed at another GPM of
            # this GPU, which same-GPU writers make stale.
            owner = self._owner_of_line(entry.line, node)
            if owner.gpu != node.gpu:
                return True
            return self.amap.gpu_home(entry.line, node.gpu, owner) != node

        return self._bulk_invalidate_l2(node, stale)
