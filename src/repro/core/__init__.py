"""The paper's contribution: coherence protocols and directories."""

from repro.core.directory import CoherenceDirectory, DirectoryEntry, Sharer
from repro.core.protocol import (
    AccessOutcome,
    CoherenceProtocol,
    NullSink,
    ProtocolStats,
    RecordingSink,
    TrafficSink,
)
from repro.core.registry import (
    FIGURE2_PROTOCOLS,
    FIGURE8_PROTOCOLS,
    PROTOCOLS,
    make_protocol,
    protocol_names,
)
from repro.core.types import (
    DirState,
    MemOp,
    Message,
    MsgType,
    NodeId,
    OpType,
    Scope,
)

__all__ = [
    "AccessOutcome", "CoherenceDirectory", "CoherenceProtocol",
    "DirectoryEntry", "DirState", "FIGURE2_PROTOCOLS", "FIGURE8_PROTOCOLS",
    "MemOp", "Message", "MsgType", "NodeId", "NullSink", "OpType",
    "PROTOCOLS", "ProtocolStats", "RecordingSink", "Scope", "Sharer",
    "TrafficSink", "make_protocol", "protocol_names",
]
