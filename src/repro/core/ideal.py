"""Idealized caching without coherence enforcement.

The paper's loose performance upper bound: data is cached hierarchically
exactly as under HMG, but coherence is *free* — a store instantly and
silently removes every other cached copy (no invalidation messages, no
directory, no acknowledgments), loads may hit in any cache regardless of
scope, and synchronization costs nothing beyond kernel-launch
serialization.  The bound therefore still pays the fundamental data
movement (freshly-produced data must still travel), but none of the
protocol overhead; HMG's "97% of ideal" claim is measured against
exactly this definition.
"""

from __future__ import annotations

from repro.core.protocol import AccessOutcome, CoherenceProtocol
from repro.core.types import MemOp, MsgType, NodeId, Scope


class IdealProtocol(CoherenceProtocol):
    """Hierarchical caching with zero coherence overhead."""

    name = "ideal"
    label = "Idealized Caching w/o Coherence"
    has_directory = False

    def _homes(self, line: int, node: NodeId):
        return self.homes(line, node)

    def _magic_invalidate(self, line: int) -> None:
        """Drop every cached copy of a line, for free: no messages, no
        latency, no directory state.  Runs before the store's own fills
        so the writer's path ends up holding only the fresh version."""
        for l2 in self.l2:
            l2.invalidate(line)
        for slices in self.l1:
            for sl in slices:
                sl.invalidate(line)

    def _load(self, op: MemOp) -> AccessOutcome:
        line = self.amap.line_of(op.address)
        ghome, syshome = self._homes(line, op.node)
        lat = self.cfg.latency
        latency = float(lat.l1_hit)

        # Scope never forces a miss in the idealized model.
        hit = self.l1_slice(op).lookup(line)
        if hit is not None:
            return AccessOutcome(hit.version, latency, hit_level="l1")

        local = self.l2[self.flat(op.node)]
        self._l2_touch(op.node, self.cfg.line_size)
        latency += lat.l2_hit
        entry = local.lookup(line)
        if entry is not None:
            self._l1_fill(op, line, entry.version, remote=op.node != syshome)
            return AccessOutcome(entry.version, latency, hit_level="local_l2")

        if op.node == syshome:
            version = self.dram[self.flat(syshome)].read(line)
            latency += lat.dram_access
            victim = local.fill(line, version, remote=False)
            self._handle_l2_victim(op.node, victim)
            self._l1_fill(op, line, version, remote=False)
            return AccessOutcome(version, latency, hit_level="dram")

        version = None
        level = "dram"
        if op.node != ghome:
            self.send(MsgType.LOAD_REQ, op.node, ghome, line)
            latency += 2 * self.hop_latency(op.node, ghome)
            self._l2_touch(ghome, self.cfg.line_size)
            latency += lat.l2_hit
            gentry = self.l2[self.flat(ghome)].lookup(line)
            if gentry is not None:
                version = gentry.version
                level = "gpu_home" if ghome != syshome else "sys_home"

        if version is None and ghome != syshome:
            self.stats.remote_gpu_loads += 1
            self.send(MsgType.LOAD_REQ, ghome, syshome, line)
            latency += 2 * self.hop_latency(ghome, syshome)
            self._l2_touch(syshome, self.cfg.line_size)
            latency += lat.l2_hit
            sentry = self.l2[self.flat(syshome)].lookup(line)
            if sentry is not None:
                version = sentry.version
                level = "sys_home"
            else:
                version = self.dram[self.flat(syshome)].read(line)
                latency += lat.dram_access
                svictim = self.l2[self.flat(syshome)].fill(
                    line, version, remote=False
                )
                self._handle_l2_victim(syshome, svictim)
            self.send(MsgType.DATA_RESP, syshome, ghome, line)
            if op.node != ghome:
                gvictim = self.l2[self.flat(ghome)].fill(
                    line, version, remote=True
                )
                self._handle_l2_victim(ghome, gvictim)
                self._l2_touch(ghome, self.cfg.line_size)
        elif version is None:
            version = self.dram[self.flat(syshome)].read(line)
            latency += lat.dram_access
            svictim = self.l2[self.flat(syshome)].fill(
                line, version, remote=False
            )
            self._handle_l2_victim(syshome, svictim)

        if op.node != ghome:
            self.send(MsgType.DATA_RESP, ghome, op.node, line)
        victim = local.fill(line, version, remote=True)
        self._handle_l2_victim(op.node, victim)
        self._l1_fill(op, line, version, remote=True)
        return AccessOutcome(version, latency, hit_level=level)

    def _store(self, op: MemOp) -> AccessOutcome:
        line = self.amap.line_of(op.address)
        ghome, syshome = self._homes(line, op.node)
        version = self._new_version()
        payload = min(op.size, self.cfg.line_size)
        lat = self.cfg.latency
        latency = float(lat.l1_hit) + lat.l2_hit

        # Free, instant coherence: every stale copy vanishes first.
        self._magic_invalidate(line)
        self._l1_store(op, line, version, remote=op.node != syshome)
        local = self.l2[self.flat(op.node)]
        self._l2_touch(op.node, payload)
        victim = local.write(line, version, dirty=op.node == syshome,
                             remote=op.node != syshome)
        self._handle_l2_victim(op.node, victim)

        if op.node != ghome:
            self.send(MsgType.STORE_REQ, op.node, ghome, line, payload=payload)
            gvictim = self.l2[self.flat(ghome)].write(
                line, version, dirty=ghome == syshome,
                remote=ghome != syshome,
            )
            self._handle_l2_victim(ghome, gvictim)
            self._l2_touch(ghome, payload)
        if ghome != syshome:
            self.send(MsgType.STORE_REQ, ghome, syshome, line, payload=payload)
            self._home_store(syshome, line, version, payload)
        return AccessOutcome(0, latency)

    def _atomic(self, op: MemOp) -> AccessOutcome:
        # Atomics execute at the nearest cached copy — free coherence
        # means no round trip is ever exposed.
        out = self._store(op)
        return AccessOutcome(self._next_version - 1, out.latency,
                             exposed=False)

    def _acquire(self, op: MemOp) -> AccessOutcome:
        # No invalidation, no forced misses: an acquire is a plain load.
        return self._load(op.with_scope(Scope.CTA))

    def _release(self, op: MemOp) -> AccessOutcome:
        return self._store(op)

    def _kernel_boundary(self, op: MemOp) -> AccessOutcome:
        # Kernel-launch serialization is not a coherence cost: the ideal
        # model pays the same drain round trip as every other protocol
        # (but performs no invalidation and sends no fences).
        if self.cfg.num_gpus > 1:
            stall = 2.0 * self.cfg.latency.inter_gpu_hop
        else:
            stall = 2.0 * self.cfg.latency.inter_gpm_hop
        return AccessOutcome(0, stall, exposed=True)
