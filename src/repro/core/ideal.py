"""Idealized caching without coherence enforcement.

The paper's loose performance upper bound: data is cached hierarchically
exactly as under HMG, but coherence is *free* — a store instantly and
silently removes every other cached copy (no invalidation messages, no
directory, no acknowledgments), loads may hit in any cache regardless of
scope, and synchronization costs nothing beyond kernel-launch
serialization.  The bound therefore still pays the fundamental data
movement (freshly-produced data must still travel), but none of the
protocol overhead; HMG's "97% of ideal" claim is measured against
exactly this definition.
"""

from __future__ import annotations

from repro.core.protocol import AccessOutcome, CoherenceProtocol
from repro.core.types import MemOp, MsgType, NodeId, Scope


class IdealProtocol(CoherenceProtocol):
    """Hierarchical caching with zero coherence overhead."""

    name = "ideal"
    label = "Idealized Caching w/o Coherence"
    has_directory = False

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # Conservative copy index for _magic_invalidate: line -> set of
        # caches that *may* hold it.  Every fill path below registers
        # the target cache; silent evictions leave stale entries behind,
        # which is safe because invalidating an absent line is a free
        # no-op (no state change, no counters).  The alternative —
        # sweeping all L2s and L1 slices on every store — dominated the
        # profile at scale.
        self._copies: dict[int, set] = {}

    def _homes(self, line: int, node: NodeId):
        return self.homes(line, node)

    def _track(self, cache, line: int) -> None:
        copies = self._copies.get(line)
        if copies is None:
            self._copies[line] = {cache}
        else:
            copies.add(cache)

    def _l1_fill(self, op, line, version, remote):
        sl = self.l1_slice(op)
        sl.fill(line, version, remote=remote)
        self._track(sl, line)

    def _l1_store(self, op, line, version, remote):
        sl = self.l1_slice(op)
        sl.write(line, version, dirty=False, remote=remote)
        self._track(sl, line)

    def _home_store(self, home: NodeId, line: int, version: int,
                    payload: int) -> None:
        super()._home_store(home, line, version, payload)
        self._track(self.l2[self.flat(home)], line)

    def _magic_invalidate(self, line: int) -> None:
        """Drop every cached copy of a line, for free: no messages, no
        latency, no directory state.  Runs before the store's own fills
        so the writer's path ends up holding only the fresh version."""
        copies = self._copies.pop(line, None)
        if copies:
            for cache in copies:
                cache.invalidate(line)

    def _load(self, op: MemOp) -> AccessOutcome:
        line = op.address >> self._line_bits
        ghome, syshome = self.homes(line, op.node)
        lat = self._lat
        latency = self._l1_hit_lat

        # Scope never forces a miss in the idealized model.
        node = op.node
        slices = self.l1[node.gpu * self._gpms_per_gpu + node.gpm]
        hit = slices[op.cta % len(slices)].lookup(line)
        if hit is not None:
            return AccessOutcome(hit.version, latency, hit_level="l1")

        nflat = node.gpu * self._gpms_per_gpu + node.gpm
        local = self.l2[nflat]
        self.l2_bytes_per_gpm[nflat] += self._line_size
        latency += self._l2_hit_lat
        entry = local.lookup(line)
        if entry is not None:
            self._l1_fill(op, line, entry.version, remote=op.node != syshome)
            return AccessOutcome(entry.version, latency, hit_level="local_l2")

        if op.node == syshome:
            version = self.dram[self.flat(syshome)].read(line)
            latency += lat.dram_access
            victim = local.fill(line, version, remote=False)
            self._track(local, line)
            self._handle_l2_victim(op.node, victim)
            self._l1_fill(op, line, version, remote=False)
            return AccessOutcome(version, latency, hit_level="dram")

        version = None
        level = "dram"
        if op.node != ghome:
            self.send(MsgType.LOAD_REQ, op.node, ghome, line)
            latency += 2 * self.hop_latency(op.node, ghome)
            self._l2_touch(ghome, self._line_size)
            latency += self._l2_hit_lat
            gentry = self.l2[self.flat(ghome)].lookup(line)
            if gentry is not None:
                version = gentry.version
                level = "gpu_home" if ghome != syshome else "sys_home"

        if version is None and ghome != syshome:
            self.stats.remote_gpu_loads += 1
            self.send(MsgType.LOAD_REQ, ghome, syshome, line)
            latency += 2 * self.hop_latency(ghome, syshome)
            self._l2_touch(syshome, self._line_size)
            latency += self._l2_hit_lat
            sentry = self.l2[self.flat(syshome)].lookup(line)
            if sentry is not None:
                version = sentry.version
                level = "sys_home"
            else:
                version = self.dram[self.flat(syshome)].read(line)
                latency += lat.dram_access
                sl2 = self.l2[self.flat(syshome)]
                svictim = sl2.fill(line, version, remote=False)
                self._track(sl2, line)
                self._handle_l2_victim(syshome, svictim)
            self.send(MsgType.DATA_RESP, syshome, ghome, line)
            if op.node != ghome:
                gl2 = self.l2[self.flat(ghome)]
                gvictim = gl2.fill(line, version, remote=True)
                self._track(gl2, line)
                self._handle_l2_victim(ghome, gvictim)
                self._l2_touch(ghome, self._line_size)
        elif version is None:
            version = self.dram[self.flat(syshome)].read(line)
            latency += lat.dram_access
            sl2 = self.l2[self.flat(syshome)]
            svictim = sl2.fill(line, version, remote=False)
            self._track(sl2, line)
            self._handle_l2_victim(syshome, svictim)

        if op.node != ghome:
            self.send(MsgType.DATA_RESP, ghome, op.node, line)
        victim = local.fill(line, version, remote=True)
        self._track(local, line)
        self._handle_l2_victim(op.node, victim)
        self._l1_fill(op, line, version, remote=True)
        return AccessOutcome(version, latency, hit_level=level)

    def _store(self, op: MemOp) -> AccessOutcome:
        line = op.address >> self._line_bits
        ghome, syshome = self.homes(line, op.node)
        version = self._new_version()
        payload = min(op.size, self._line_size)
        lat = self._lat
        latency = self._l1_hit_lat + self._l2_hit_lat

        # Free, instant coherence: every stale copy vanishes first.
        self._magic_invalidate(line)
        self._l1_store(op, line, version, remote=op.node != syshome)
        node = op.node
        nflat = node.gpu * self._gpms_per_gpu + node.gpm
        local = self.l2[nflat]
        self.l2_bytes_per_gpm[nflat] += payload
        victim = local.write(line, version, dirty=op.node == syshome,
                             remote=op.node != syshome)
        self._track(local, line)
        self._handle_l2_victim(op.node, victim)

        if op.node != ghome:
            self.send(MsgType.STORE_REQ, op.node, ghome, line, payload=payload)
            gl2 = self.l2[self.flat(ghome)]
            gvictim = gl2.write(
                line, version, dirty=ghome == syshome,
                remote=ghome != syshome,
            )
            self._track(gl2, line)
            self._handle_l2_victim(ghome, gvictim)
            self._l2_touch(ghome, payload)
        if ghome != syshome:
            self.send(MsgType.STORE_REQ, ghome, syshome, line, payload=payload)
            self._home_store(syshome, line, version, payload)
        return AccessOutcome(0, latency)

    def _atomic(self, op: MemOp) -> AccessOutcome:
        # Atomics execute at the nearest cached copy — free coherence
        # means no round trip is ever exposed.
        out = self._store(op)
        return AccessOutcome(self._next_version - 1, out.latency,
                             exposed=False)

    def _acquire(self, op: MemOp) -> AccessOutcome:
        # No invalidation, no forced misses: an acquire is a plain load.
        return self._load(op.with_scope(Scope.CTA))

    def _release(self, op: MemOp) -> AccessOutcome:
        return self._store(op)

    def _kernel_boundary(self, op: MemOp) -> AccessOutcome:
        # Kernel-launch serialization is not a coherence cost: the ideal
        # model pays the same drain round trip as every other protocol
        # (but performs no invalidation and sends no fences).
        if self.cfg.num_gpus > 1:
            stall = 2.0 * self.cfg.latency.inter_gpu_hop
        else:
            stall = 2.0 * self.cfg.latency.inter_gpm_hop
        return AccessOutcome(0, stall, exposed=True)
