"""Fundamental vocabulary of the coherence model.

Scopes follow NVIDIA PTX terminology (``.cta``, ``.gpu``, ``.sys``); the
HRF equivalents are work-group, device and system.  Memory operations are
the trace-level events the simulator consumes; message types are the
on-wire coherence traffic the protocols emit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import NamedTuple, Optional


class Scope(enum.IntEnum):
    """Synchronization scope of a memory operation.

    Ordering is meaningful: a wider scope includes every narrower one.
    """

    CTA = 0
    GPU = 1
    SYS = 2

    @property
    def ptx_name(self) -> str:
        return "." + self.name.lower()

    def includes(self, other: "Scope") -> bool:
        """True if this scope subsumes ``other``."""
        return self >= other


class OpType(enum.IntEnum):
    """Kind of a trace memory operation."""

    LOAD = 0
    STORE = 1
    ATOMIC = 2
    #: Load-acquire: performs scope-appropriate invalidation first.
    ACQUIRE = 3
    #: Store-release: flushes/fences pending writes for the scope.
    RELEASE = 4
    #: Kernel boundary marker — an implicit .sys (or configured scope)
    #: release at the end of a kernel plus acquire at the start of the
    #: dependent one, following bulk-synchronous practice.
    KERNEL_BOUNDARY = 5

    @property
    def is_read(self) -> bool:
        return self in (OpType.LOAD, OpType.ACQUIRE)

    @property
    def is_write(self) -> bool:
        return self in (OpType.STORE, OpType.ATOMIC, OpType.RELEASE)

    @property
    def is_synchronizing(self) -> bool:
        return self in (OpType.ACQUIRE, OpType.RELEASE, OpType.KERNEL_BOUNDARY)


class MsgType(enum.IntEnum):
    """On-wire coherence message classes.

    Byte sizes for each class come from
    :class:`repro.config.MessageSizeConfig`.
    """

    LOAD_REQ = 0
    STORE_REQ = 1  # write-through data travelling toward a home node
    ATOMIC_REQ = 2
    DATA_RESP = 3  # cache-line fill response
    ATOMIC_RESP = 4
    INVALIDATION = 5
    RELEASE_FENCE = 6
    RELEASE_ACK = 7
    DOWNGRADE = 8
    WRITEBACK = 9
    #: Invalidation acknowledgment — only multi-copy-atomic protocols
    #: (GPU-VI) send these; NHCC/HMG never do (Section IV).
    INV_ACK = 10

    @property
    def carries_data(self) -> bool:
        return self in (
            MsgType.STORE_REQ,
            MsgType.DATA_RESP,
            MsgType.WRITEBACK,
            MsgType.ATOMIC_REQ,
        )


class NodeId(NamedTuple):
    """Identifies one GPM: ``(gpu, gpm)``.

    ``gpm`` is the index *within* the GPU, not a flat index.

    A :class:`~typing.NamedTuple` rather than a dataclass: node ids are
    compared, hashed and unpacked millions of times per simulated run,
    and the tuple machinery does all three in C.  Ordering (by
    ``(gpu, gpm)``) and immutability match the previous frozen
    dataclass semantics.
    """

    gpu: int
    gpm: int

    def flat(self, gpms_per_gpu: int) -> int:
        """Flatten to a single integer id (used by non-hierarchical
        protocols, which view the system as one big GPU)."""
        return self.gpu * gpms_per_gpu + self.gpm

    @staticmethod
    def from_flat(flat: int, gpms_per_gpu: int) -> "NodeId":
        """Inverse of :meth:`flat`."""
        return NodeId(flat // gpms_per_gpu, flat % gpms_per_gpu)

    def same_gpu(self, other: "NodeId") -> bool:
        """True when both GPMs live in the same GPU package."""
        return self.gpu == other.gpu

    def __str__(self) -> str:
        return f"GPU{self.gpu}:GPM{self.gpm}"


class MemOp:
    """One trace-level memory operation.

    ``address`` is a byte address; accesses are modelled at cache-line
    granularity, so the simulator only ever looks at the containing line.

    A ``__slots__`` class rather than a dataclass: every simulated op
    reads these attributes several times on the protocol hot path, and
    slot descriptors are the cheapest attribute access CPython offers.
    Instances are immutable (like the previous frozen dataclass) and
    compare/hash by value.
    """

    __slots__ = ("op", "address", "node", "cta", "scope", "size")

    #: Field order, mirroring the positional constructor signature.
    _fields = ("op", "address", "node", "cta", "scope", "size")

    def __init__(self, op: OpType, address: int, node: NodeId,
                 cta: int = 0, scope: Scope = Scope.CTA, size: int = 4):
        if address < 0:
            raise ValueError("address must be non-negative")
        if size <= 0:
            raise ValueError("size must be positive")
        s = object.__setattr__
        s(self, "op", op)
        s(self, "address", address)
        s(self, "node", node)
        s(self, "cta", cta)
        s(self, "scope", scope)
        s(self, "size", size)

    def __setattr__(self, name, value):
        raise AttributeError(f"MemOp is immutable (tried to set {name!r})")

    def __delattr__(self, name):
        raise AttributeError(f"MemOp is immutable (tried to delete {name!r})")

    def _key(self) -> tuple:
        return (self.op, self.address, self.node, self.cta, self.scope,
                self.size)

    def __eq__(self, other) -> bool:
        if not isinstance(other, MemOp):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return (f"MemOp(op={self.op!r}, address={self.address!r}, "
                f"node={self.node!r}, cta={self.cta!r}, "
                f"scope={self.scope!r}, size={self.size!r})")

    def __reduce__(self):
        return (MemOp, self._key())

    def with_scope(self, scope: Scope) -> "MemOp":
        """Copy of this op with a different synchronization scope."""
        return MemOp(self.op, self.address, self.node, self.cta, scope, self.size)


@dataclass(frozen=True)
class Message:
    """One coherence message traversing the interconnect."""

    mtype: MsgType
    src: NodeId
    dst: NodeId
    address: Optional[int] = None
    size_bytes: int = 0

    @property
    def crosses_gpu(self) -> bool:
        return self.src.gpu != self.dst.gpu

    def __str__(self) -> str:
        where = f"0x{self.address:x}" if self.address is not None else "-"
        return f"{self.mtype.name} {self.src}->{self.dst} {where} ({self.size_bytes}B)"


class DirState(enum.IntEnum):
    """Stable coherence-directory states.  NHCC/HMG use exactly two;
    there are no transient states (Section IV)."""

    INVALID = 0
    VALID = 1
