"""Fig 3: intra-GPU locality of inter-GPU loads.

"Percentage of inter-GPU loads destined to addresses accessed by
another GPM in the same GPU."  This is a property of the *trace* under
first-touch placement, independent of the coherence protocol: for every
load whose system home is a peer GPU, we ask whether some other GPM of
the issuing GPU also touches that line anywhere in the run.  A high
percentage is exactly the locality HMG's GPU home nodes convert into
intra-GPU hits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig
from repro.core.types import OpType
from repro.memsys.address import AddressMap
from repro.memsys.page_table import PageTable, make_placement


@dataclass
class LocalityReport:
    """Result of the Fig 3 analysis for one workload trace."""

    workload: str
    inter_gpu_loads: int
    shareable_loads: int
    total_loads: int

    @property
    def shareable_fraction(self) -> float:
        """Fig 3's y-value for this workload."""
        if not self.inter_gpu_loads:
            return 0.0
        return self.shareable_loads / self.inter_gpu_loads

    @property
    def inter_gpu_fraction(self) -> float:
        if not self.total_loads:
            return 0.0
        return self.inter_gpu_loads / self.total_loads


def analyze_locality(trace, cfg: SystemConfig, workload: str = "trace",
                     placement: str = "first_touch") -> LocalityReport:
    """Run the Fig 3 analysis over a trace.

    Two passes: the first replays first-touch placement and records, per
    line, the set of (gpu, gpm) pairs that access it; the second counts
    inter-GPU loads and checks each against the per-GPU access sets.
    """
    amap = AddressMap.from_config(cfg)
    table = PageTable(cfg.page_size,
                      make_placement(placement, cfg.num_gpus,
                                     cfg.gpms_per_gpu))
    ops = trace if isinstance(trace, (list, tuple)) else list(trace)

    # Pass 1: placement + access sets (bitmask of GPMs per (gpu, line)).
    accessors: dict = {}
    owners: dict = {}
    for op in ops:
        if op.op == OpType.KERNEL_BOUNDARY:
            continue
        line = amap.line_of(op.address)
        if line not in owners:
            owners[line] = table.owner_of_page(
                amap.page_of_line(line), op.node
            )
        key = (op.node.gpu, line)
        accessors[key] = accessors.get(key, 0) | (1 << op.node.gpm)

    # Pass 2: classify inter-GPU loads.
    inter = 0
    shareable = 0
    total_loads = 0
    for op in ops:
        if op.op not in (OpType.LOAD, OpType.ACQUIRE):
            continue
        total_loads += 1
        line = amap.line_of(op.address)
        if owners[line].gpu == op.node.gpu:
            continue
        inter += 1
        mask = accessors[(op.node.gpu, line)]
        if mask & ~(1 << op.node.gpm):
            shareable += 1
    return LocalityReport(workload, inter, shareable, total_loads)
