"""ASCII rendering of figure/table data.

Every experiment prints the same rows/series the paper's figures plot;
these helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.metrics import SpeedupTable


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 precision: int = 2) -> str:
    """Render a list of rows as an aligned ASCII table."""
    def fmt(cell):
        if cell is None:
            return "--"
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in text_rows)) if text_rows else len(h)
        for i, h in enumerate(headers)
    ]
    def line(cells):
        return "  ".join(c.rjust(w) if i else c.ljust(w)
                         for i, (c, w) in enumerate(zip(cells, widths)))

    out = [line(list(headers)), line(["-" * w for w in widths])]
    out.extend(line(r) for r in text_rows)
    return "\n".join(out)


def format_speedup_table(table: SpeedupTable, labels: Mapping[str, str],
                         geomean_row: bool = True) -> str:
    """Fig 2/8-style table: one row per workload, one column per
    protocol, speedups normalized to the no-remote-caching baseline."""
    headers = ["workload"] + [labels.get(p, p) for p in table.protocols]
    rows = [
        [workload] + [table.rows[workload][p] for p in table.protocols]
        for workload in table.workloads()
    ]
    if geomean_row and len(table.rows) > 1:
        gm = table.geomeans()
        rows.append(["GeoMean"] + [gm[p] for p in table.protocols])
    text = format_table(headers, rows)
    if table.gaps():
        text += (
            f"\n\n(-- = {table.gaps()} cell(s) failed permanently; "
            "geomeans exclude them — see the sweep's failed-cells "
            "manifest)"
        )
    return text


def format_bars(values: Mapping[str, float], width: int = 40,
                precision: int = 2) -> str:
    """Horizontal ASCII bar chart (for single-series figures)."""
    if not values:
        return "(empty)"
    peak = max(values.values())
    scale = width / peak if peak > 0 else 0
    name_w = max(len(k) for k in values)
    lines = []
    for name, v in values.items():
        bar = "#" * max(0, int(round(v * scale)))
        lines.append(f"{name:<{name_w}}  {v:>{precision + 6}.{precision}f} {bar}")
    return "\n".join(lines)


def format_sweep(series: Mapping[str, Mapping], x_label: str,
                 labels: Mapping[str, str]) -> str:
    """Fig 12/13/14-style table: rows are sweep points, columns are
    protocols, cells are geomean speedups."""
    points = None
    for proto_series in series.values():
        points = list(proto_series)
        break
    headers = [x_label] + [labels.get(p, p) for p in series]
    rows = [
        [str(point)] + [series[p][point] for p in series]
        for point in (points or [])
    ]
    return format_table(headers, rows)
