"""Analysis: metrics, locality, correlation, hardware cost, reports."""

from repro.analysis.cost import (
    DirectoryCost,
    flat_directory_cost,
    hmg_directory_cost,
)
from repro.analysis.correlation import (
    CorrelationReport,
    microbenchmark_suite,
    run_correlation,
)
from repro.analysis.locality import LocalityReport, analyze_locality
from repro.analysis.metrics import (
    SpeedupTable,
    geomean,
    mean_abs_relative_error,
    normalized_speedups,
    pearson,
)
from repro.analysis.report import (
    format_bars,
    format_speedup_table,
    format_sweep,
    format_table,
)

__all__ = [
    "CorrelationReport", "DirectoryCost", "LocalityReport", "SpeedupTable",
    "analyze_locality", "flat_directory_cost", "format_bars",
    "format_speedup_table", "format_sweep", "format_table", "geomean",
    "hmg_directory_cost", "mean_abs_relative_error",
    "microbenchmark_suite", "normalized_speedups", "pearson",
    "run_correlation",
]
