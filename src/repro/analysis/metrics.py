"""Metrics over simulation results: speedups, means, figure series."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Sequence


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's cross-workload aggregate)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain mean (used where the paper averages, e.g. Fig 3's Avg)."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def normalized_speedups(results: Mapping[str, "SimResult"],
                        baseline: str = "noremote") -> Dict[str, float]:
    """Speedup of every protocol over the baseline result.

    A ``None`` result — a cell the sweep fabric gave up on after
    exhausting its retries — yields a ``None`` speedup (rendered as a
    flagged gap downstream) rather than aborting the figure; a ``None``
    baseline gaps the whole row.
    """
    base = results[baseline]
    return {
        name: (None if base is None or r is None
               else base.cycles / r.cycles)
        for name, r in results.items()
        if name != baseline
    }


class SpeedupTable:
    """Per-workload, per-protocol speedups with geomean aggregation.

    This is the data structure behind Figs 2, 8, 12, 13 and 14.
    """

    def __init__(self, protocols: Sequence[str]):
        self.protocols = list(protocols)
        self.rows: dict = {}  # workload -> {protocol: speedup}

    def add(self, workload: str, speedups: Mapping[str, float]) -> None:
        """Append one workload's speedups (all protocols required)."""
        missing = [p for p in self.protocols if p not in speedups]
        if missing:
            raise ValueError(f"missing protocols {missing} for {workload}")
        self.rows[workload] = {p: speedups[p] for p in self.protocols}

    def workloads(self) -> list:
        """Workloads in insertion (x-axis) order."""
        return list(self.rows)

    def series(self, protocol: str) -> list:
        """One protocol's bar heights in insertion (x-axis) order."""
        return [row[protocol] for row in self.rows.values()]

    def geomeans(self) -> Dict[str, float]:
        """Per-protocol geometric mean over all workloads.

        Gapped cells (``None``: permanently failed sweep cells) are
        excluded from the mean; a protocol with no surviving cells
        aggregates to ``None``.
        """
        out: Dict[str, float] = {}
        for p in self.protocols:
            values = [v for v in self.series(p) if v is not None]
            out[p] = geomean(values) if values else None
        return out

    def gaps(self) -> int:
        """Count of gapped (failed) cells across the table."""
        return sum(
            1 for row in self.rows.values()
            for v in row.values() if v is None
        )

    def row(self, workload: str) -> Dict[str, float]:
        """One workload's speedups as a fresh dict."""
        return dict(self.rows[workload])

    def relative(self, protocol: str, reference: str) -> float:
        """Geomean ratio protocol/reference — e.g. the paper's
        "HMG improves over NHCC by 18%" is ``relative('hmg','nhcc')``.
        ``None`` when either side is fully gapped."""
        gm = self.geomeans()
        if gm[protocol] is None or gm[reference] is None:
            return None
        return gm[protocol] / gm[reference]


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two equal-length samples of size >= 2")
    mx = arithmetic_mean(xs)
    my = arithmetic_mean(ys)
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx == 0 or vy == 0:
        raise ValueError("zero variance sample")
    return cov / math.sqrt(vx * vy)


def mean_abs_relative_error(xs: Sequence[float],
                            ys: Sequence[float]) -> float:
    """Mean of |x - y| / y (the paper reports 0.13 for their simulator)."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("need equal-length non-empty samples")
    return arithmetic_mean(abs(x - y) / y for x, y in zip(xs, ys))
