"""Section VII-C: hardware cost of the HMG coherence directory.

The paper's arithmetic: each entry tracks as many as
``(gpms_per_gpu - 1) + (num_gpus - 1)`` sharers (six for the 4x4
system), one Valid bit, and a 48-bit tag, giving 55 bits per entry;
12 K entries/GPM is 84 KB (decimal KB, as the paper rounds), 2.7% of a
GPM's 3 MB L2 data capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig


@dataclass(frozen=True)
class DirectoryCost:
    """Storage-cost breakdown for one GPM's coherence directory."""

    sharer_bits: int
    state_bits: int
    tag_bits: int
    entries: int

    @property
    def bits_per_entry(self) -> int:
        return self.sharer_bits + self.state_bits + self.tag_bits

    @property
    def total_bits(self) -> int:
        return self.bits_per_entry * self.entries

    @property
    def total_bytes(self) -> int:
        return self.total_bits // 8

    def fraction_of(self, l2_bytes: int) -> float:
        """Directory storage as a fraction of a given L2 capacity."""
        return self.total_bytes / l2_bytes

    def describe(self, l2_bytes: int) -> str:
        """Render the Section VII-C cost arithmetic as one line."""
        return (
            f"{self.sharer_bits}-bit sharer vector + {self.state_bits} "
            f"state bit + {self.tag_bits}-bit tag = "
            f"{self.bits_per_entry} bits/entry; {self.entries} entries "
            f"= {self.total_bytes / 1000:.0f}KB "
            f"({100 * self.fraction_of(l2_bytes):.1f}% of the "
            f"{l2_bytes // (1 << 20)}MB L2 per GPM)"
        )


def hmg_directory_cost(cfg: SystemConfig, tag_bits: int = 48,
                       state_bits: int = 1) -> DirectoryCost:
    """Directory cost under HMG's hierarchical sharer tracking.

    An entry at a home node tracks the other GPMs of its GPU plus the
    peer GPUs — never peer-GPU-internal GPMs (Section V-A).
    """
    sharers = (cfg.gpms_per_gpu - 1) + (cfg.num_gpus - 1)
    return DirectoryCost(
        sharer_bits=sharers,
        state_bits=state_bits,
        tag_bits=tag_bits,
        entries=cfg.dir_entries_per_gpm,
    )


def flat_directory_cost(cfg: SystemConfig, tag_bits: int = 48,
                        state_bits: int = 1) -> DirectoryCost:
    """Cost if sharers were tracked flat (every GPM in the system) —
    the comparison that motivates hierarchical tracking's scalability."""
    return DirectoryCost(
        sharer_bits=cfg.total_gpms - 1,
        state_bits=state_bits,
        tag_bits=tag_bits,
        entries=cfg.dir_entries_per_gpm,
    )
