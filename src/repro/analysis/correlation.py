"""Fig 7 substitute: timing-backend correlation study.

The paper validates its proprietary simulator against an NVIDIA Quadro
GV100 over microbenchmarks and workloads, reporting a correlation
coefficient of 0.99 and a mean absolute error of 0.13.  We have no
hardware, so the same methodology validates our *fast* backend (the
throughput engine used for every sweep) against our *detailed*
event-driven backend: a suite of microbenchmarks spanning remote-read
intensity, reuse, sharing shape and working-set size is run through
both, and we report the correlation of (log-)cycles and the mean
absolute relative error.  See DESIGN.md, "Substitutions".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.analysis.metrics import mean_abs_relative_error, pearson
from repro.engine.simulator import simulate
from repro.trace.generator import WorkloadSpec


def microbenchmark_suite(ops_per_kernel: int = 2500) -> list:
    """Microbenchmarks spanning the behaviours the engines must agree on.

    Each uses few kernels so per-kernel work is long enough for
    bandwidth effects (not single-op latency tails) to dominate — the
    regime real workloads live in.
    """
    suite = []

    def add(name, pattern, kernels, params):
        suite.append(WorkloadSpec(
            name=f"micro {name}", abbrev=name, suite="micro",
            footprint_mb=1.0, pattern=pattern, kernels=kernels,
            ops_per_gpm_per_kernel=ops_per_kernel, params=params,
        ))

    add("local_stream", "dense_ml", 2,
        {"remote_frac": 0.01, "reuse": 1, "hier_frac": 0.5,
         "act_mult": 0.5})
    add("remote_light", "dense_ml", 2,
        {"remote_frac": 0.08, "reuse": 2, "hier_frac": 0.7,
         "act_mult": 0.5})
    add("remote_heavy", "dense_ml", 2,
        {"remote_frac": 0.30, "reuse": 2, "hier_frac": 0.8,
         "act_mult": 0.4})
    add("broadcast", "dense_ml", 2,
        {"remote_frac": 0.20, "reuse": 6, "hier_frac": 1.0,
         "act_mult": 0.4})
    add("partitioned", "dense_ml", 2,
        {"remote_frac": 0.20, "reuse": 4, "hier_frac": 0.0,
         "act_mult": 0.4})
    add("halo", "stencil", 3,
        {"remote_frac": 0.10, "reuse": 2, "domain_mult": 0.6})
    add("sweep", "wavefront", 3,
        {"remote_frac": 0.25, "reuse": 3, "hier_frac": 1.0,
         "fresh": True, "local_mult": 0.5})
    add("irregular", "graph", 2,
        {"remote_frac": 0.15, "reuse": 2, "hot_frac": 0.5,
         "store_frac": 0.03, "edges_mult": 0.6})
    add("synced", "solver", 3,
        {"remote_frac": 0.10, "reuse": 3, "hier_frac": 0.8,
         "gpu_synced": True, "sys_every": 3, "domain_mult": 0.6})
    add("thrash", "dense_ml", 2,
        {"remote_frac": 0.05, "reuse": 1, "hier_frac": 0.5,
         "act_mult": 2.0})
    return suite


@dataclass
class CorrelationPoint:
    name: str
    protocol: str
    detailed_cycles: float
    fast_cycles: float


@dataclass
class CorrelationReport:
    """Fig 7 analogue: per-point cycles from both backends."""

    points: list = field(default_factory=list)

    @property
    def correlation(self) -> float:
        """Pearson correlation of log-cycles (the paper's scatter is
        log-log over several decades)."""
        xs = [math.log(p.fast_cycles) for p in self.points]
        ys = [math.log(p.detailed_cycles) for p in self.points]
        return pearson(xs, ys)

    @property
    def mean_abs_error(self) -> float:
        """Mean absolute relative error of log-cycles between backends."""
        xs = [math.log(p.fast_cycles) for p in self.points]
        ys = [math.log(p.detailed_cycles) for p in self.points]
        return mean_abs_relative_error(xs, ys)

    def rows(self) -> list:
        """Per-point (name, protocol, fast, detailed) tuples."""
        return [
            (p.name, p.protocol, p.fast_cycles, p.detailed_cycles)
            for p in self.points
        ]


def run_correlation(cfg: SystemConfig, protocols=("noremote", "hmg"),
                    seed: int = 1, ops_scale: float = 1.0,
                    suite=None) -> CorrelationReport:
    """Run the microbenchmark suite through both timing backends."""
    report = CorrelationReport()
    for spec in (suite or microbenchmark_suite()):
        trace = list(spec.generate(cfg, seed=seed, ops_scale=ops_scale))
        for protocol in protocols:
            fast = simulate(trace, cfg, protocol=protocol,
                            engine="throughput", workload_name=spec.abbrev)
            slow = simulate(trace, cfg, protocol=protocol,
                            engine="detailed", workload_name=spec.abbrev)
            report.points.append(CorrelationPoint(
                spec.abbrev, protocol, slow.cycles, fast.cycles
            ))
    return report
