"""System configuration for the simulated hierarchical multi-GPU platform.

The defaults mirror Table II of the HMG paper (HPCA 2020):

======================  =========================================
Number of GPUs          4
Number of SMs           128 per GPU, 512 in total
Number of GPMs          4 per GPU
GPU frequency           1.3 GHz
Max number of warps     64 per SM
OS page size            2 MB
L1 data cache           128 KB per SM, 128 B lines
L2 data cache           12 MB per GPU, 128 B lines, 16 ways
L2 coherence directory  12 K entries per GPM, 4 lines per entry
Inter-GPM bandwidth     2 TB/s per GPU, bi-directional
Inter-GPU bandwidth     200 GB/s per link, bi-directional
Total DRAM bandwidth    1 TB/s per GPU
Total DRAM capacity     32 GB per GPU
======================  =========================================

Because the real system is GB-scale and this reproduction runs on a
laptop, :meth:`SystemConfig.paper_scaled` applies a single ``scale``
factor consistently to every capacity (caches, directory, page size and —
via the trace generators — workload footprints).  The protocol-relevant
*ratios* (working set : L2 capacity, shared footprint : directory
coverage) are preserved, which is what the paper's conclusions depend on.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Gigabytes-per-second are expressed in decimal units, as link vendors do.
GBPS = 1_000_000_000.0


class ConfigError(ValueError):
    """Raised when a configuration is internally inconsistent."""


@dataclass(frozen=True)
class LatencyConfig:
    """Unloaded latencies, in core cycles, for each hop of the hierarchy.

    These follow the paper's qualitative statement that a round trip to a
    remote GPU is "an order of magnitude larger" than an intra-GPU hop.
    """

    l1_hit: int = 28
    l2_hit: int = 96
    inter_gpm_hop: int = 110
    inter_gpu_hop: int = 520
    dram_access: int = 320

    def validate(self) -> None:
        for f in dataclasses.fields(self):
            if getattr(self, f.name) <= 0:
                raise ConfigError(f"latency {f.name} must be positive")
        if self.inter_gpu_hop <= self.inter_gpm_hop:
            raise ConfigError(
                "inter-GPU hop latency must exceed inter-GPM hop latency"
            )


@dataclass(frozen=True)
class MessageSizeConfig:
    """On-wire sizes, in bytes, of each coherence message class.

    The paper notes invalidation messages are "relatively small compared
    to a GPU cache line"; requests and invalidations are header-only.
    """

    request_header: int = 16
    data_payload_extra: int = 16  # header accompanying a data payload
    invalidation: int = 16
    acknowledgment: int = 8
    release_fence: int = 16
    downgrade: int = 16

    def validate(self) -> None:
        for f in dataclasses.fields(self):
            if getattr(self, f.name) <= 0:
                raise ConfigError(f"message size {f.name} must be positive")


@dataclass(frozen=True)
class TimingConfig:
    """Knobs of the throughput (bottleneck) timing model."""

    #: Memory operations a GPM's SMs can issue per core cycle in aggregate.
    issue_rate_per_gpm: float = 16.0
    #: Divisor applied to synchronization round-trip latency to model the
    #: GPU's ability to overlap it with independent warps.
    latency_tolerance: float = 32.0
    #: L2 bank service bandwidth per GPM, bytes per cycle.  Sized to
    #: sustain the full SM issue rate at line granularity so the L2
    #: data banks are never the artificial bottleneck (real GPU L2s are
    #: provisioned against aggregate SM bandwidth).
    l2_bytes_per_cycle: float = 4096.0
    #: Cycles charged for a whole-cache bulk invalidation.  Flash-clear
    #: is a broadcast to the valid bits — nearly free; the real cost of
    #: bulk invalidation is the refetching, which the cache state models.
    bulk_invalidate_cycles: int = 2
    #: Imperfect-overlap tax: execution time is the busiest resource
    #: class plus this fraction of the other classes' busy time (phases
    #: of real programs never overlap compute, DRAM and network
    #: perfectly).
    overlap_tax: float = 0.25
    #: How effectively GPU-VI's transient states (3 L1 + 12 L2 states,
    #: 65 transitions — Section III-B) hide its multi-copy-atomic
    #: write-acknowledgment latency.  Acks are charged at
    #: 1/mca_transient_hiding of the raw round trip (then further
    #: discounted by latency_tolerance like all exposed latency).
    mca_transient_hiding: float = 12.0

    def validate(self) -> None:
        if self.issue_rate_per_gpm <= 0:
            raise ConfigError("issue_rate_per_gpm must be positive")
        if self.latency_tolerance < 1:
            raise ConfigError("latency_tolerance must be >= 1")
        if self.l2_bytes_per_cycle <= 0:
            raise ConfigError("l2_bytes_per_cycle must be positive")
        if self.bulk_invalidate_cycles < 0:
            raise ConfigError("bulk_invalidate_cycles must be >= 0")
        if not 0 <= self.overlap_tax <= 1:
            raise ConfigError("overlap_tax must be in [0, 1]")
        if self.mca_transient_hiding < 1:
            raise ConfigError("mca_transient_hiding must be >= 1")


@dataclass(frozen=True)
class SystemConfig:
    """Full description of the simulated platform (Table II defaults)."""

    num_gpus: int = 4
    gpms_per_gpu: int = 4
    sms_per_gpm: int = 32
    frequency_ghz: float = 1.3
    max_warps_per_sm: int = 64

    line_size: int = 128
    page_size: int = 2 * MB

    l1_bytes_per_sm: int = 128 * KB
    #: L1s are modelled as slices per GPM rather than one per SM; CTAs
    #: hash to slices.  See DESIGN.md, "Substitutions".
    l1_slices_per_gpm: int = 4
    l1_ways: int = 8

    l2_bytes_per_gpu: int = 12 * MB
    l2_ways: int = 16

    dir_entries_per_gpm: int = 12 * 1024
    dir_ways: int = 16
    dir_lines_per_entry: int = 4

    inter_gpm_bw_gbps: float = 2000.0
    inter_gpu_bw_gbps: float = 200.0
    dram_bw_per_gpu_gbps: float = 1000.0
    dram_bytes_per_gpu: int = 32 * GB

    #: Whether clean L2 evictions send a downgrade message to the home
    #: node (Section IV, "Cache Eviction" — optional, off in the paper's
    #: evaluation: "We do not implement the optional sharer downgrade").
    downgrade_on_clean_eviction: bool = False

    #: Capacity scale factor actually applied (1.0 for the paper config).
    scale: float = 1.0

    latency: LatencyConfig = field(default_factory=LatencyConfig)
    message_sizes: MessageSizeConfig = field(default_factory=MessageSizeConfig)
    timing: TimingConfig = field(default_factory=TimingConfig)

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------

    @classmethod
    def paper(cls, **overrides) -> "SystemConfig":
        """The exact Table II configuration."""
        return cls(**overrides)

    @classmethod
    def paper_scaled(cls, scale: float = 1.0 / 16, dir_scale: float = None,
                     **overrides) -> "SystemConfig":
        """Table II with every capacity scaled down by ``scale``.

        Bandwidths, latencies and structural counts (GPUs, GPMs, ways)
        are left untouched: the simulation's clock is abstract, so only
        capacity *ratios* need preserving.

        The coherence directory is scaled by ``dir_scale`` (default
        ``scale / 4``): the paper's directories cover 6 MB against
        multi-GB remote footprints, so preserving the experienced
        *coverage : remote-footprint* regime — the one that produces
        the capacity evictions of Fig 10 and the Fig 14 sensitivity —
        requires scaling the directory harder than the caches (the
        synthetic shared working sets scale with the caches, not with
        the paper footprints).  See DESIGN.md, "Substitutions".
        """
        if not 0 < scale <= 1:
            raise ConfigError("scale must be in (0, 1]")
        if dir_scale is None:
            dir_scale = scale / 4
        if not 0 < dir_scale <= 1:
            raise ConfigError("dir_scale must be in (0, 1]")
        base = cls()
        scaled = dict(
            page_size=_scale_pow2(base.page_size, scale, minimum=4 * base.line_size),
            l1_bytes_per_sm=_scale_pow2(
                base.l1_bytes_per_sm, scale, minimum=base.line_size * base.l1_ways
            ),
            l2_bytes_per_gpu=_scale_pow2(
                base.l2_bytes_per_gpu,
                scale,
                minimum=base.line_size * base.l2_ways * base.gpms_per_gpu,
            ),
            dir_entries_per_gpm=_scale_pow2(
                base.dir_entries_per_gpm, dir_scale, minimum=base.dir_ways
            ),
            dram_bytes_per_gpu=_scale_pow2(base.dram_bytes_per_gpu, scale),
            scale=scale,
        )
        scaled.update(overrides)
        return cls(**scaled)

    def replace(self, **changes) -> "SystemConfig":
        """Return a copy with ``changes`` applied (validates the result)."""
        cfg = dataclasses.replace(self, **changes)
        cfg.validate()
        return cfg

    def __post_init__(self):
        self.validate()

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def total_gpms(self) -> int:
        return self.num_gpus * self.gpms_per_gpu

    @property
    def total_sms(self) -> int:
        return self.total_gpms * self.sms_per_gpm

    @property
    def l2_bytes_per_gpm(self) -> int:
        return self.l2_bytes_per_gpu // self.gpms_per_gpu

    @property
    def l1_bytes_per_slice(self) -> int:
        """Each L1 slice models the L1 of the SM subset one CTA group
        maps to; its capacity is one SM's L1, so the pervasive
        cross-SM duplication of shared data is reflected as reduced
        effective capacity rather than modelled per-SM."""
        return self.l1_bytes_per_sm

    @property
    def lines_per_page(self) -> int:
        return self.page_size // self.line_size

    @property
    def cycles_per_second(self) -> float:
        return self.frequency_ghz * 1e9

    def bytes_per_cycle(self, gbps: float) -> float:
        """Convert a link bandwidth in GB/s to bytes per core cycle."""
        return gbps * GBPS / self.cycles_per_second

    @property
    def inter_gpm_bytes_per_cycle(self) -> float:
        return self.bytes_per_cycle(self.inter_gpm_bw_gbps)

    @property
    def inter_gpu_bytes_per_cycle(self) -> float:
        return self.bytes_per_cycle(self.inter_gpu_bw_gbps)

    @property
    def dram_bytes_per_cycle_per_gpm(self) -> float:
        return self.bytes_per_cycle(self.dram_bw_per_gpu_gbps) / self.gpms_per_gpu

    @property
    def dir_coverage_bytes_per_gpm(self) -> int:
        """Shared-data footprint one GPM's directory can track.

        With Table II values: 12K entries x 4 lines x 128 B = 6 MB, the
        figure quoted in Section VI.
        """
        return self.dir_entries_per_gpm * self.dir_lines_per_entry * self.line_size

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        if self.num_gpus < 1:
            raise ConfigError("num_gpus must be >= 1")
        if self.gpms_per_gpu < 1:
            raise ConfigError("gpms_per_gpu must be >= 1")
        if self.sms_per_gpm < 1:
            raise ConfigError("sms_per_gpm must be >= 1")
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ConfigError("line_size must be a positive power of two")
        if self.page_size % self.line_size:
            raise ConfigError("page_size must be a multiple of line_size")
        if self.page_size < self.line_size:
            raise ConfigError("page_size must be >= line_size")
        if self.l2_bytes_per_gpu % self.gpms_per_gpu:
            raise ConfigError("l2_bytes_per_gpu must divide evenly across GPMs")
        if self.l2_bytes_per_gpm % (self.line_size * self.l2_ways):
            raise ConfigError("L2 per GPM must hold a whole number of sets")
        if self.dir_entries_per_gpm % self.dir_ways:
            raise ConfigError("directory entries must divide into whole sets")
        if self.dir_lines_per_entry <= 0 or (
            self.dir_lines_per_entry & (self.dir_lines_per_entry - 1)
        ):
            raise ConfigError("dir_lines_per_entry must be a positive power of two")
        if self.l1_slices_per_gpm < 1 or self.l1_slices_per_gpm > self.sms_per_gpm:
            raise ConfigError("l1_slices_per_gpm must be in [1, sms_per_gpm]")
        for bw in (
            self.inter_gpm_bw_gbps,
            self.inter_gpu_bw_gbps,
            self.dram_bw_per_gpu_gbps,
        ):
            if bw <= 0:
                raise ConfigError("bandwidths must be positive")
        if self.frequency_ghz <= 0:
            raise ConfigError("frequency must be positive")
        self.latency.validate()
        self.message_sizes.validate()
        self.timing.validate()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """Render the configuration as a Table II-style listing."""
        rows = [
            ("Number of GPUs", str(self.num_gpus)),
            (
                "Number of SMs",
                f"{self.gpms_per_gpu * self.sms_per_gpm} per GPU, "
                f"{self.total_sms} in total",
            ),
            ("Number of GPMs", f"{self.gpms_per_gpu} per GPU"),
            ("GPU frequency", f"{self.frequency_ghz}GHz"),
            ("Max number of warps", f"{self.max_warps_per_sm} per SM"),
            ("OS Page Size", _fmt_bytes(self.page_size)),
            (
                "L1 data cache",
                f"{_fmt_bytes(self.l1_bytes_per_sm)} per SM, "
                f"{self.line_size}B lines",
            ),
            (
                "L2 data cache",
                f"{_fmt_bytes(self.l2_bytes_per_gpu)} per GPU, "
                f"{self.line_size}B lines, {self.l2_ways} ways",
            ),
            (
                "L2 coherence directory",
                f"{self.dir_entries_per_gpm} entries per GPU module, "
                f"each entry covers {self.dir_lines_per_entry} cache lines",
            ),
            (
                "Inter-GPM bandwidth",
                f"{self.inter_gpm_bw_gbps / 1000:g}TB/s per GPU, bi-directional",
            ),
            (
                "Inter-GPU bandwidth",
                f"{self.inter_gpu_bw_gbps:g}GB/s per link, bi-directional",
            ),
            (
                "Total DRAM bandwidth",
                f"{self.dram_bw_per_gpu_gbps / 1000:g}TB/s per GPU",
            ),
            ("Total DRAM capacity", f"{_fmt_bytes(self.dram_bytes_per_gpu)} per GPU"),
        ]
        if self.scale != 1.0:
            rows.append(("Capacity scale factor", f"{self.scale:g}"))
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name:<{width}}  {value}" for name, value in rows)


def _scale_pow2(value: int, scale: float, minimum: int = 1) -> int:
    """Scale ``value`` down and round to the nearest power of two."""
    target = max(minimum, int(value * scale))
    pow2 = 1
    while pow2 * 2 <= target:
        pow2 *= 2
    if target - pow2 > 2 * pow2 - target:
        pow2 *= 2
    return max(pow2, minimum)


def _fmt_bytes(n: int) -> str:
    for unit, size in (("GB", GB), ("MB", MB), ("KB", KB)):
        if n >= size and n % size == 0:
            return f"{n // size}{unit}"
    for unit, size in (("GB", GB), ("MB", MB), ("KB", KB)):
        if n >= size:
            return f"{n / size:.1f}{unit}"
    return f"{n}B"
