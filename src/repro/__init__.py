"""repro — a full reproduction of HMG (HPCA 2020).

HMG: Extending Cache Coherence Protocols Across Modern Hierarchical
Multi-GPU Systems.  See README.md for a tour and DESIGN.md for the
system inventory and experiment index.
"""

from repro.config import SystemConfig
from repro.core.registry import (
    FIGURE2_PROTOCOLS,
    FIGURE8_PROTOCOLS,
    PROTOCOLS,
    make_protocol,
    protocol_names,
)
from repro.core.sanitizer import CoherenceSanitizer, CoherenceViolation
from repro.core.types import MemOp, NodeId, OpType, Scope
from repro.engine.detailed import SimulationStalled
from repro.engine.simulator import compare, simulate, speedups
from repro.engine.stats import SimResult
from repro.faults import FAULT_PLANS, FaultPlan, make_fault_plan
from repro.trace.stream import Trace
from repro.trace.workloads import FIGURE_ORDER, WORKLOADS, get_workload

__version__ = "1.1.0"

__all__ = [
    "CoherenceSanitizer", "CoherenceViolation", "FAULT_PLANS",
    "FIGURE2_PROTOCOLS", "FIGURE8_PROTOCOLS", "FIGURE_ORDER", "FaultPlan",
    "MemOp", "NodeId", "OpType", "PROTOCOLS", "Scope", "SimResult",
    "SimulationStalled", "SystemConfig", "Trace", "WORKLOADS", "compare",
    "get_workload", "make_fault_plan", "make_protocol", "protocol_names",
    "simulate", "speedups", "__version__",
]
