"""Structural GPU hierarchy: CTAs, SMs, GPMs, GPUs, the whole machine."""

from repro.gpu.cta import CTA, ContiguousCTAScheduler, RoundRobinCTAScheduler
from repro.gpu.gpm import GPMView
from repro.gpu.gpu import GPUView
from repro.gpu.sm import SMCluster
from repro.gpu.system import MultiGPUSystem

__all__ = [
    "CTA", "ContiguousCTAScheduler", "GPMView", "GPUView",
    "MultiGPUSystem", "RoundRobinCTAScheduler", "SMCluster",
]
