"""CTA scheduling.

The simulator inherits *contiguous CTA scheduling* from the MCM-GPU /
NUMA-aware GPU work (Section VI): consecutive CTAs of a kernel are
assigned to the same GPM so that inter-CTA locality turns into intra-GPM
cache locality, and page first-touch lands near the consumer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig
from repro.core.types import NodeId


@dataclass(frozen=True)
class CTA:
    """One cooperative thread array of a kernel grid."""

    kernel: int
    index: int

    def __str__(self) -> str:
        return f"kernel{self.kernel}:cta{self.index}"


class ContiguousCTAScheduler:
    """Assigns CTA index ranges to GPMs contiguously.

    For a grid of ``n`` CTAs over ``G`` GPMs, GPM ``i`` runs CTAs
    ``[i * n/G, (i+1) * n/G)`` — the placement that maximizes
    neighbouring-CTA data locality.
    """

    def __init__(self, cfg: SystemConfig):
        self.cfg = cfg
        self.total_gpms = cfg.total_gpms

    def node_of(self, cta_index: int, grid_size: int) -> NodeId:
        if not 0 <= cta_index < grid_size:
            raise IndexError(f"CTA {cta_index} outside grid of {grid_size}")
        per_gpm = -(-grid_size // self.total_gpms)
        flat = min(cta_index // per_gpm, self.total_gpms - 1)
        return NodeId.from_flat(flat, self.cfg.gpms_per_gpu)

    def ctas_of(self, node: NodeId, grid_size: int) -> range:
        """CTA index range assigned to one GPM."""
        flat = node.flat(self.cfg.gpms_per_gpu)
        per_gpm = -(-grid_size // self.total_gpms)
        start = min(flat * per_gpm, grid_size)
        end = min(start + per_gpm, grid_size)
        return range(start, end)

    def slice_of(self, cta_index: int) -> int:
        """L1 slice an CTA's memory accesses use within its GPM."""
        return cta_index % self.cfg.l1_slices_per_gpm


class RoundRobinCTAScheduler(ContiguousCTAScheduler):
    """Ablation: CTAs round-robin across GPMs (locality-oblivious)."""

    def node_of(self, cta_index: int, grid_size: int) -> NodeId:
        if not 0 <= cta_index < grid_size:
            raise IndexError(f"CTA {cta_index} outside grid of {grid_size}")
        return NodeId.from_flat(cta_index % self.total_gpms,
                                self.cfg.gpms_per_gpu)

    def ctas_of(self, node: NodeId, grid_size: int) -> range:
        flat = node.flat(self.cfg.gpms_per_gpu)
        return range(flat, grid_size, self.total_gpms)
