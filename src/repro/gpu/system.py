"""Top-level machine view: protocol state + topology, Fig 1 shaped.

:class:`MultiGPUSystem` is the introspection-friendly wrapper around a
protocol instance: it exposes the GPU/GPM hierarchy, the interconnect,
and machine-wide occupancy summaries.  The engines operate on the
protocol directly; this view exists for examples, debugging and tests.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.core.protocol import TrafficSink
from repro.core.registry import make_protocol
from repro.core.types import NodeId
from repro.gpu.gpu import GPUView
from repro.gpu.gpm import GPMView
from repro.interconnect.network import Network


class MultiGPUSystem:
    """A protocol instance viewed as the hierarchical machine it models."""

    def __init__(self, cfg: SystemConfig, protocol: str = "hmg",
                 sink: TrafficSink = None, placement: str = "first_touch"):
        self.cfg = cfg
        self.protocol = make_protocol(protocol, cfg, sink=sink,
                                      placement=placement)
        self.network = Network(cfg)

    @property
    def gpus(self) -> list:
        return [GPUView(g, self.protocol) for g in range(self.cfg.num_gpus)]

    def gpm(self, gpu: int, gpm: int) -> GPMView:
        """Navigate to one GPM's structural view."""
        return GPMView(NodeId(gpu, gpm), self.protocol)

    def process(self, op):
        """Run one op through the protocol (functional, untimed)."""
        return self.protocol.process(op)

    def run(self, trace):
        """Run a whole trace functionally; returns the protocol stats."""
        for op in trace:
            self.protocol.process(op)
        return self.protocol.stats

    def describe(self) -> str:
        """Multi-line summary of the whole machine."""
        head = (
            f"{self.cfg.num_gpus}-GPU system, {self.cfg.gpms_per_gpu} GPMs "
            f"per GPU, protocol={self.protocol.name}"
        )
        return "\n".join([head] + [gpu.describe() for gpu in self.gpus])
