"""Whole-GPU structural view: the GPMs of one package (Fig 1/4)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.protocol import CoherenceProtocol
from repro.core.types import NodeId
from repro.gpu.gpm import GPMView


@dataclass
class GPUView:
    """One GPU: an MCM of ``gpms_per_gpu`` GPU modules."""

    index: int
    protocol: CoherenceProtocol

    @property
    def gpms(self) -> list:
        return [
            GPMView(NodeId(self.index, m), self.protocol)
            for m in range(self.protocol.cfg.gpms_per_gpu)
        ]

    def l2_resident_lines(self) -> int:
        """Valid lines across this GPU's four L2 partitions."""
        return sum(len(gpm.l2) for gpm in self.gpms)

    def directory_occupancy(self) -> int:
        """Valid directory entries across this GPU's GPMs."""
        if not self.protocol.has_directory:
            return 0
        return sum(len(gpm.directory) for gpm in self.gpms)

    def describe(self) -> str:
        """Multi-line occupancy summary of the GPU."""
        lines = [f"GPU{self.index}:"]
        lines.extend("  " + gpm.describe() for gpm in self.gpms)
        return "\n".join(lines)
