"""Streaming-multiprocessor issue model (detailed engine).

An :class:`SMCluster` stands for the SMs of one GPM.  It issues memory
operations in program order at a configurable rate, keeps a bounded
number outstanding (the aggregate MSHR / scoreboard capacity), and
stalls on synchronizing operations until they complete — the behaviour
that exposes remote round trips exactly when the memory model says they
must be waited on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig
from repro.core.types import NodeId


@dataclass
class SMClusterStats:
    issued: int = 0
    sync_stalls: int = 0
    stall_cycles: float = 0.0
    window_full_cycles: float = 0.0


class SMCluster:
    """In-order issue front-end of one GPM with bounded outstanding ops."""

    def __init__(self, node: NodeId, cfg: SystemConfig,
                 max_outstanding: int = 64):
        if max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")
        self.node = node
        self.cfg = cfg
        self.issue_interval = 1.0 / cfg.timing.issue_rate_per_gpm
        self.max_outstanding = max_outstanding
        #: Completion times of in-flight operations (kept sorted lazily).
        self._inflight: list = []
        #: Earliest time the next op may issue.
        self.next_issue = 0.0
        self.stats = SMClusterStats()

    def _drain(self, now: float) -> None:
        self._inflight = [t for t in self._inflight if t > now]

    def issue(self, now_hint: float, completion_of) -> float:
        """Issue the next op.

        ``completion_of(issue_time)`` maps an issue timestamp to the
        op's completion time (the engine computes it from the protocol
        outcome and link queuing).  Returns the issue time actually
        granted.
        """
        t = max(self.next_issue, now_hint)
        self._drain(t)
        if len(self._inflight) >= self.max_outstanding:
            # Wait for the oldest in-flight op to retire.
            oldest = min(self._inflight)
            self.stats.window_full_cycles += oldest - t
            t = oldest
            self._drain(t)
        done = completion_of(t)
        self._inflight.append(done)
        self.stats.issued += 1
        self.next_issue = t + self.issue_interval
        return t

    def barrier(self, now: float, completion: float) -> None:
        """Stall issue until ``completion`` (synchronizing op retired)."""
        self.stats.sync_stalls += 1
        if completion > self.next_issue:
            self.stats.stall_cycles += completion - max(now, self.next_issue)
            self.next_issue = completion

    @property
    def busy_until(self) -> float:
        return max([self.next_issue] + self._inflight)
