"""GPU-module (GPM) structural view.

A :class:`GPMView` bundles the per-GPM pieces that the protocols own —
L1 slices, the L2 partition, the DRAM partition, the (optional)
coherence directory — with the detailed engine's SM issue cluster, so
examples and tests can navigate the machine the way Fig 4 draws it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.protocol import CoherenceProtocol
from repro.core.types import NodeId
from repro.gpu.sm import SMCluster


@dataclass
class GPMView:
    """One GPM: SMs + L1 slices + L2 partition + DRAM + directory."""

    node: NodeId
    protocol: CoherenceProtocol
    sm: SMCluster = None

    @property
    def flat(self) -> int:
        return self.protocol.flat(self.node)

    @property
    def l1_slices(self):
        return self.protocol.l1[self.flat]

    @property
    def l2(self):
        return self.protocol.l2[self.flat]

    @property
    def dram(self):
        return self.protocol.dram[self.flat]

    @property
    def directory(self):
        if not self.protocol.has_directory:
            return None
        return self.protocol.dirs[self.flat]

    def resident_remote_lines(self) -> int:
        """Valid L2 lines whose system home is elsewhere."""
        return sum(1 for entry in self.l2.lines() if entry.remote)

    def describe(self) -> str:
        """One-line occupancy summary of this GPM."""
        dir_part = ""
        if self.directory is not None:
            dir_part = (f", directory {len(self.directory)}/"
                        f"{self.directory.capacity} entries")
        return (
            f"{self.node}: L2 {len(self.l2)}/{self.l2.capacity_lines} lines"
            f" ({self.resident_remote_lines()} remote){dir_part}"
        )
